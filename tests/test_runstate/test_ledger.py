"""Completion-ledger semantics: durable append, crash-tolerant replay."""

from __future__ import annotations

import json
import threading

import pytest

from repro.runstate import LEDGER_SCHEMA, CompletionLedger, LedgerEntry


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "ledger.jsonl"


class TestAppendReplay:
    def test_roundtrip(self, path):
        with CompletionLedger(path) as led:
            led.record("feature", "t1")
            led.record("inference", "t1/model_1", attempt=1, ok=False,
                       error="OutOfMemoryError: boom")
            led.record("inference", "t1/model_1", attempt=2, ok=True)
        with CompletionLedger(path) as led2:
            assert led2.n_replayed == 3
            assert led2.completed("feature") == {"t1"}
            assert led2.completed("inference") == {"t1/model_1"}
            assert led2.counts() == {
                "feature": {"ok": 1, "failed": 0},
                "inference": {"ok": 1, "failed": 1},
            }
            assert led2.entries[1] == LedgerEntry(
                stage="inference", key="t1/model_1", attempt=1, ok=False,
                error="OutOfMemoryError: boom",
            )

    def test_header_schema_line(self, path):
        CompletionLedger(path).close()
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"schema": LEDGER_SCHEMA}

    def test_failed_keys_not_completed(self, path):
        with CompletionLedger(path) as led:
            led.record("inference", "lost", ok=False, error="OOM")
            assert led.completed("inference") == set()
            assert not led.is_complete("inference", "lost")

    def test_fresh_instance_empty(self, path):
        led = CompletionLedger(path)
        assert led.n_replayed == 0
        assert len(led) == 0
        led.close()


class TestCrashTolerance:
    def test_truncated_final_line_dropped(self, path):
        """A SIGKILL mid-append leaves a torn tail; replay drops it."""
        with CompletionLedger(path) as led:
            led.record("feature", "a")
            led.record("feature", "b")
        with open(path, "ab") as fh:
            fh.write(b'{"stage":"feature","key":"c","atte')  # torn append
        with CompletionLedger(path) as led2:
            assert led2.completed("feature") == {"a", "b"}
            assert led2.n_replayed == 2
            # The torn bytes were truncated away, so new appends parse.
            led2.record("feature", "c")
        with CompletionLedger(path) as led3:
            assert led3.completed("feature") == {"a", "b", "c"}
        for line in path.read_text().splitlines():
            json.loads(line)  # every surviving line is valid JSON

    def test_garbage_terminated_final_line_dropped(self, path):
        with CompletionLedger(path) as led:
            led.record("feature", "a")
        with open(path, "ab") as fh:
            fh.write(b"not json at all\n")
        with CompletionLedger(path) as led2:
            assert led2.completed("feature") == {"a"}

    def test_corrupt_middle_line_raises(self, path):
        with CompletionLedger(path) as led:
            led.record("feature", "a")
            led.record("feature", "b")
        raw = path.read_bytes().splitlines(keepends=True)
        raw[1] = b"garbage line\n"  # corrupt a *middle* record
        path.write_bytes(b"".join(raw))
        with pytest.raises(ValueError, match="corrupt ledger"):
            CompletionLedger(path)

    def test_wrong_schema_raises(self, path):
        path.write_text('{"schema": "someone/elses/format"}\n')
        with pytest.raises(ValueError, match="not a"):
            CompletionLedger(path)

    def test_all_garbage_file_resets(self, path):
        """A file holding only a torn first line is recoverable."""
        path.write_bytes(b'{"schema": "repro.runstate.led')
        with CompletionLedger(path) as led:
            assert led.n_replayed == 0
            led.record("feature", "a")
        assert CompletionLedger(path).completed("feature") == {"a"}


class TestConcurrency:
    def test_threaded_appends_all_survive(self, path):
        led = CompletionLedger(path, fsync=False)

        def writer(worker: int) -> None:
            for i in range(25):
                led.record("inference", f"w{worker}/t{i}", ok=i % 5 != 0)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        led.close()
        replayed = CompletionLedger(path)
        assert len(replayed) == 8 * 25
        assert len(replayed.completed("inference")) == 8 * 20
        replayed.close()
