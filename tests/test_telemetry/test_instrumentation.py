"""Instrumented call sites: executors, recycling, minimisation, cache."""

import numpy as np

from repro.cache import FeatureCache
from repro.dataflow import (
    FaultInjector,
    RetryPolicy,
    TaskSpec,
    ThreadedExecutor,
    make_workers,
    simulate_dataflow,
)
from repro.fold.recycling import RecycleController
from repro.telemetry import MetricsRegistry, Tracer, use_metrics, use_tracer


class TestEngineMetrics:
    def test_clean_run_counters_and_latency(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            ThreadedExecutor(2).map(
                lambda x: x, [(f"t{i}", i, 1.0) for i in range(10)],
                stage="feature",
            )
        counters = reg.counter_values("feature.")
        # eagerly created: zeroes still export
        assert counters == {
            "feature.task.failures": 0.0,
            "feature.task.retries": 0.0,
            "feature.task.oom_escalations": 0.0,
            "feature.task.unschedulable": 0.0,
            "feature.task.skipped_dependency": 0.0,
        }
        hist = reg.histogram("feature.task.latency_seconds")
        assert hist.count == 10

    def test_failures_and_retries_counted(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            res = ThreadedExecutor(4, highmem_workers=1).map(
                lambda x: x,
                [(f"t{i}", i, 1.0) for i in range(40)],
                failure_fn=FaultInjector(rate=0.15, seed=5),
                retry_policy=RetryPolicy(max_attempts=3),
            )
        counters = reg.counter_values("dataflow.")
        assert counters["dataflow.task.failures"] == res.n_failed > 0
        n_retries = sum(1 for r in res.records if r.attempt > 1)
        assert counters["dataflow.task.retries"] == n_retries > 0

    def test_oom_escalation_counter_and_event(self):
        reg = MetricsRegistry()
        tr = Tracer()

        def oom_on_standard(task, worker):
            if not worker.highmem:
                return "OutOfMemoryError: injected"
            return None

        with use_metrics(reg), use_tracer(tr):
            res = ThreadedExecutor(3, highmem_workers=1).map(
                lambda x: x,
                [(f"t{i}", i, 1.0) for i in range(6)],
                failure_fn=oom_on_standard,
                retry_policy=RetryPolicy(max_attempts=4),
            )
        assert res.lost_keys() == []
        counters = reg.counter_values("dataflow.")
        assert counters["dataflow.task.oom_escalations"] > 0
        escalation_events = [
            e for e in tr.events if e.name == "dataflow.task.oom_escalation"
        ]
        assert len(escalation_events) == counters["dataflow.task.oom_escalations"]
        assert all("key" in e.attrs for e in escalation_events)

    def test_unschedulable_counted(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            res = ThreadedExecutor(2).map(
                lambda x: x,
                [TaskSpec(key="big", payload=0, size_hint=1.0,
                          requires_highmem=True)],
            )
        assert res.lost_keys() == ["big"]
        counters = reg.counter_values("dataflow.")
        assert counters["dataflow.task.unschedulable"] == 1.0
        assert counters["dataflow.task.failures"] == 1.0


class TestSimulatedMetrics:
    def test_sim_counters(self):
        reg = MetricsRegistry()
        tasks = [TaskSpec(key=f"t{i}", size_hint=float(i % 7 + 1)) for i in range(50)]
        with use_metrics(reg):
            res = simulate_dataflow(
                tasks,
                make_workers(2, 2, highmem_nodes=1),
                lambda t: t.size_hint,
                failure_fn=FaultInjector(rate=0.2, seed=2),
                retry_policy=RetryPolicy(max_attempts=3),
                task_overhead=0.0,
                startup=0.0,
            )
        counters = reg.counter_values("sim.dataflow.")
        assert counters["sim.dataflow.task.failures"] == res.n_failed > 0
        n_retries = sum(1 for r in res.records if r.attempt > 1)
        assert counters["sim.dataflow.task.retries"] == n_retries

    def test_dispatch_counters_follow_routing(self):
        reg = MetricsRegistry()
        tasks = [
            TaskSpec(key=f"h{i}", size_hint=1.0, requires_highmem=True)
            for i in range(3)
        ] + [TaskSpec(key=f"s{i}", size_hint=1.0) for i in range(5)]
        with use_metrics(reg):
            simulate_dataflow(
                tasks, make_workers(2, 2, highmem_nodes=1), lambda t: 1.0
            )
        counters = reg.counter_values("dataflow.dispatch.")
        assert counters["dataflow.dispatch.highmem"] == 3.0
        assert counters["dataflow.dispatch.standard"] == 5.0


class TestRecycleMetrics:
    def _converging_controller(self, tolerance, cap=20):
        rng = np.random.default_rng(0)
        ca = rng.normal(size=(30, 3)) * 10
        ctrl = RecycleController(tolerance=tolerance, cap=cap)
        while not ctrl.update(ca):
            pass
        return ctrl

    def test_early_stop_metrics_and_event(self):
        reg = MetricsRegistry()
        tr = Tracer()
        with use_metrics(reg), use_tracer(tr):
            ctrl = self._converging_controller(tolerance=0.5)
        counters = reg.counter_values("fold.recycle.")
        assert counters["fold.recycle.early_stops"] == 1.0
        assert counters["fold.recycle.total"] == ctrl.n_recycles
        stops = [e for e in tr.events if e.name == "fold.recycle.stop"]
        assert len(stops) == 1
        assert stops[0].attrs["reason"] == "early"
        assert stops[0].attrs["recycles"] == ctrl.n_recycles

    def test_cap_stop_metrics(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            self._converging_controller(tolerance=None, cap=4)
        counters = reg.counter_values("fold.recycle.")
        assert counters["fold.recycle.cap_stops"] == 1.0
        assert counters["fold.recycle.total"] == 4.0
        hist = reg.histogram(
            "fold.recycle.count", buckets=tuple(float(i) for i in range(1, 21))
        )
        assert hist.count == 1

    def test_cap_one_stop_event_is_json_safe(self):
        reg = MetricsRegistry()
        tr = Tracer()
        with use_metrics(reg), use_tracer(tr):
            self._converging_controller(tolerance=None, cap=1)
        stop = [e for e in tr.events if e.name == "fold.recycle.stop"][0]
        # no second recycle ran: last_change is +inf internally, which is
        # not valid strict JSON, so the event must carry None
        assert stop.attrs["last_change"] is None


class TestCacheMetrics:
    def test_hits_and_misses_flow_to_registry(self):
        reg = MetricsRegistry()
        cache = FeatureCache()
        with use_metrics(reg):
            assert cache.get("k1") is None  # miss
            cache.put("k1", "bundle")
            assert cache.get("k1") == "bundle"  # hit
            assert cache.get("k2") is None  # miss
        counters = reg.counter_values("feature.cache.")
        assert counters["feature.cache.misses"] == 2.0
        assert counters["feature.cache.hits"] == 1.0
        # legacy CacheStats stay coherent with the registry view
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
