"""Tracer: span nesting, explicit clocks, cross-thread parenting."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SimClock
from repro.dataflow import TaskSpec, ThreadedExecutor, make_workers, simulate_dataflow
from repro.telemetry import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    set_tracer,
    spans_from_records,
    use_tracer,
)


class TestSpanNesting:
    def test_parent_child_ids(self):
        tr = Tracer()
        with tr.span("run", "campaign") as run:
            with tr.span("stage", "features") as stage:
                with tr.span("task", "P0001") as task:
                    pass
        assert run.parent_id is None
        assert stage.parent_id == run.span_id
        assert task.parent_id == stage.span_id
        assert tr.children_of(run) == [stage]
        assert tr.children_of(stage) == [task]

    def test_spans_ordered_and_closed(self):
        tr = Tracer()
        with tr.span("stage", "a"):
            pass
        with tr.span("stage", "b"):
            pass
        names = [s.name for s in tr.spans]
        assert names == ["a", "b"]
        assert all(s.end is not None for s in tr.spans)
        assert tr.spans[0].start <= tr.spans[1].start

    def test_siblings_share_parent(self):
        tr = Tracer()
        with tr.span("stage", "s") as stage:
            with tr.span("task", "t1"):
                pass
            with tr.span("task", "t2"):
                pass
        kids = tr.children_of(stage)
        assert [k.name for k in kids] == ["t1", "t2"]

    def test_attrs_and_set_attr(self):
        tr = Tracer()
        with tr.span("task", "x", attrs={"worker": "w1"}) as span:
            span.set_attr("ok", True)
        assert span.attrs == {"worker": "w1", "ok": True}

    def test_events_attach_to_current_span(self):
        tr = Tracer()
        with tr.span("stage", "s") as stage:
            tr.event("oom", category="dataflow", attrs={"key": "t3"})
        assert len(tr.events) == 1
        assert tr.events[0].parent_id == stage.span_id
        assert tr.events[0].attrs == {"key": "t3"}

    def test_complete_rejects_negative_duration(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.complete("task", "bad", start=2.0, end=1.0)


class TestExplicitClock:
    def test_sim_clock_timestamps(self):
        clock = SimClock()
        tr = Tracer(clock=lambda: clock.now)
        with tr.span("stage", "sim-stage") as span:
            clock.schedule(125.0, lambda: None)
            clock.run()
        assert span.start == 0.0
        assert span.end == 125.0
        assert span.duration == 125.0

    def test_default_clock_starts_near_zero(self):
        tr = Tracer()
        assert 0.0 <= tr.now() < 1.0


class TestCrossThreadNesting:
    def test_ambient_span_parents_worker_threads(self):
        tr = Tracer()
        seen = []

        def work():
            with tr.span("task", "from-thread") as s:
                seen.append(s)

        with tr.span("stage", "s", ambient=True) as stage:
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert seen[0].parent_id == stage.span_id

    def test_executor_task_spans_nest_under_stage(self):
        tr = Tracer()
        ex = ThreadedExecutor(4)
        with use_tracer(tr):
            with tr.span("stage", "map", ambient=True) as stage:
                ex.map(lambda p: p, [(f"t{i}", i, 1.0) for i in range(16)])
        task_spans = [s for s in tr.spans if s.category == "task"]
        assert len(task_spans) == 16
        assert {s.parent_id for s in task_spans} == {stage.span_id}
        assert {s.name for s in task_spans} == {f"t{i}" for i in range(16)}
        for s in task_spans:
            assert stage.start <= s.start and s.end <= stage.end
            assert s.attrs["worker"].startswith("tcp-worker-")
            assert s.attrs["attempt"] == 1
            assert s.attrs["ok"] is True

    def test_concurrent_span_creation_is_consistent(self):
        tr = Tracer()
        n_threads, per_thread = 8, 50

        def work(i):
            for j in range(per_thread):
                with tr.span("task", f"t{i}-{j}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.spans) == n_threads * per_thread
        ids = [s.span_id for s in tr.spans]
        assert len(set(ids)) == len(ids)
        assert all(s.end is not None and s.end >= s.start for s in tr.spans)


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert get_tracer().enabled is False

    def test_null_span_yields_none(self):
        with NULL_TRACER.span("task", "x") as span:
            assert span is None

    def test_use_tracer_restores(self):
        tr = Tracer()
        with use_tracer(tr):
            assert get_tracer() is tr
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        tr = Tracer()
        set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestSpansFromRecords:
    def _records(self):
        tasks = [TaskSpec(key=f"t{i}", size_hint=float(i + 1)) for i in range(6)]
        return simulate_dataflow(
            tasks, make_workers(1, 2), lambda t: t.size_hint
        ).records

    def test_round_trip_fields(self):
        records = self._records()
        spans = spans_from_records(records)
        assert len(spans) == len(records)
        by_key = {s.name: s for s in spans}
        for r in records:
            s = by_key[r.key]
            assert s.start == r.start and s.end == r.end
            assert s.attrs["worker"] == r.worker_id
            assert s.attrs["clock"] == "sim"

    def test_offset_shifts_timestamps(self):
        records = self._records()
        base = spans_from_records(records)
        shifted = spans_from_records(records, offset=100.0)
        for b, s in zip(base, shifted):
            assert s.start == b.start + 100.0
            assert s.end == b.end + 100.0
            assert s.duration == pytest.approx(b.duration)

    def test_extra_attrs_and_unique_ids_across_calls(self):
        records = self._records()
        first = spans_from_records(records, attrs={"stage": "features"})
        second = spans_from_records(records)
        assert all(s.attrs["stage"] == "features" for s in first)
        ids = [s.span_id for s in first + second]
        assert len(set(ids)) == len(ids)


class _ManualClock:
    """Directly advanceable clock for property tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt


@given(
    layout=st.lists(
        st.lists(st.floats(0.001, 10.0), min_size=0, max_size=5),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=60, deadline=None)
def test_child_durations_sum_within_parent(layout):
    """Children run inside their parent: for any nesting produced by the
    context-manager API, the sum of direct-child durations never exceeds
    the parent's own duration (children are sequential on one thread)."""
    clock = _ManualClock()
    tr = Tracer(clock=lambda: clock.now)

    def build(levels):
        with tr.span("level", f"depth-{len(levels)}") as span:
            for advance in levels[0]:
                clock.advance(advance)
                if len(levels) > 1:
                    build(levels[1:])
        return span

    build(layout)
    for span in tr.spans:
        kids = tr.children_of(span)
        total = sum(k.duration for k in kids)
        assert total <= span.duration + 1e-9
