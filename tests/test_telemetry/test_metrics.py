"""Metrics registry: counters, gauges, histograms, snapshots, deltas."""

import threading

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("feature.cache.hits")
        c.inc()
        c.inc(3)
        assert c.value == 4.0

    def test_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b.c") is reg.counter("a.b.c")

    def test_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("hot")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("queue.depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0


class TestHistogram:
    def test_bucket_edges_inclusive_upper(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            h.observe(v)
        d = h.to_dict()
        # counts: (-inf,1], (1,2], (2,4], (4,+inf)
        assert d["counts"] == [2, 2, 1, 1]
        assert d["count"] == 6
        assert d["sum"] == pytest.approx(18.0)
        assert d["min"] == 0.5 and d["max"] == 9.0

    def test_mean_and_quantile(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            h.observe(v)
        assert h.mean() == pytest.approx(5.6 / 4)
        assert h.quantile(0.5) == 1.0  # 2 of 4 in the first bucket
        assert h.quantile(1.0) == 4.0

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("lat")
        assert h.mean() == 0.0
        assert h.quantile(0.9) == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("lat")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS

    def test_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("empty", buckets=())

    def test_quantile_range_check(self):
        h = MetricsRegistry().histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_cross_type_name_collision(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(ValueError):
            reg.gauge("x.y")
        with pytest.raises(ValueError):
            reg.histogram("x.y")

    def test_counter_values_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("feature.cache.hits").inc(2)
        reg.counter("relax.verlet.rebuilds").inc()
        assert reg.counter_values("feature.") == {"feature.cache.hits": 2.0}

    def test_delta(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        before = reg.counter_values()
        reg.counter("a").inc(2)
        reg.counter("b").inc()
        after = reg.counter_values()
        assert MetricsRegistry.delta(before, after) == {"a": 2.0, "b": 1.0}

    def test_delta_drops_unmoved(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        before = reg.counter_values()
        after = reg.counter_values()
        assert MetricsRegistry.delta(before, after) == {}

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(3)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["histograms"]["h"]["count"] == 1
        # snapshot must not deadlock on the shared lock (regression: it
        # used to call Histogram.to_dict while already holding it)
        assert reg.snapshot()["histograms"]["h"]["counts"] == [1, 0]


class TestGlobalRegistry:
    def test_default_always_present(self):
        assert get_metrics() is not None

    def test_use_metrics_swaps_and_restores(self):
        outer = get_metrics()
        mine = MetricsRegistry()
        with use_metrics(mine):
            assert get_metrics() is mine
            get_metrics().counter("scoped").inc()
        assert get_metrics() is outer
        assert "scoped" not in outer.counter_values()
        assert mine.counter_values() == {"scoped": 1.0}

    def test_set_metrics_none_installs_fresh(self):
        previous = get_metrics()
        try:
            fresh = set_metrics(None)
            assert fresh is get_metrics()
            assert fresh is not previous
        finally:
            set_metrics(previous)
