"""TelemetrySession export, run loading, report rendering, CLI report."""

import json

import pytest

from repro.cli import main
from repro.telemetry import (
    TelemetrySession,
    get_metrics,
    get_tracer,
    load_run,
    render_report,
    validate_chrome_trace,
)


def _record_small_run(session):
    with session.activate():
        tracer, metrics = get_tracer(), get_metrics()
        with tracer.span("run", "campaign"):
            with tracer.span("stage", "features", attrs={"n_tasks": 2}):
                metrics.counter("feature.cache.misses").inc(2)
                metrics.histogram("feature.task.latency_seconds").observe(0.02)
    session.annotate(preset="genome", seed=3)


class TestSession:
    def test_activate_installs_and_restores(self):
        session = TelemetrySession()
        outer_tracer, outer_metrics = get_tracer(), get_metrics()
        with session.activate():
            assert get_tracer() is session.tracer
            assert get_metrics() is session.metrics
        assert get_tracer() is outer_tracer
        assert get_metrics() is outer_metrics

    def test_export_writes_all_artifacts(self, tmp_path):
        session = TelemetrySession(tmp_path / "run")
        _record_small_run(session)
        paths = session.export(wall_seconds=0.5)
        for name in ("manifest", "trace", "metrics", "metrics_csv"):
            assert paths[name].exists()
        manifest = json.loads(paths["manifest"].read_text())
        assert manifest["preset"] == "genome"
        assert manifest["seed"] == 3
        assert manifest["wall_seconds"] == 0.5
        trace = json.loads(paths["trace"].read_text())
        assert validate_chrome_trace(trace) == []

    def test_export_without_run_dir_raises(self):
        session = TelemetrySession()
        with pytest.raises(ValueError):
            session.export()


class TestLoadRun:
    def test_round_trip(self, tmp_path):
        session = TelemetrySession(tmp_path)
        _record_small_run(session)
        session.export()
        artifacts = load_run(tmp_path)
        assert artifacts.manifest["preset"] == "genome"
        assert artifacts.metrics["counters"]["feature.cache.misses"] == 2.0
        stages = artifacts.stage_spans()
        assert [s["name"] for s in stages] == ["features"]

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path)

    def test_invalid_trace_raises(self, tmp_path):
        session = TelemetrySession(tmp_path)
        _record_small_run(session)
        session.export()
        (tmp_path / "trace.json").write_text(
            json.dumps({"traceEvents": [{"ph": "X", "name": ""}]})
        )
        with pytest.raises(ValueError, match="not a valid Chrome trace"):
            load_run(tmp_path)


class TestRenderReport:
    def test_report_sections(self, tmp_path):
        session = TelemetrySession(tmp_path)
        _record_small_run(session)
        session.export()
        text = render_report(load_run(tmp_path))
        assert "preset" in text and "genome" in text
        assert "stages (wall clock):" in text
        assert "features" in text
        assert "feature.cache.misses" in text
        assert "feature.task.latency_seconds" in text


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        session = TelemetrySession(tmp_path)
        _record_small_run(session)
        session.export()
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "preset" in out and "counters:" in out

    def test_report_command_missing_dir(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1
        assert "missing telemetry artifact" in capsys.readouterr().err
