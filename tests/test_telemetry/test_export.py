"""Exporters: Chrome trace schema, lane round-trips, manifests."""

import json

import pytest

from repro.dataflow import TaskSpec, extract_gantt, make_workers, simulate_dataflow
from repro.telemetry import (
    SIM_PID,
    WALL_PID,
    MetricsRegistry,
    Tracer,
    build_manifest,
    chrome_trace,
    lanes_from_trace,
    spans_from_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)


def _tracer_with_spans():
    tr = Tracer()
    with tr.span("run", "campaign"):
        with tr.span("stage", "features"):
            with tr.span("task", "P0001", attrs={"worker": "w1"}):
                pass
            tr.event("cache.miss", category="feature", attrs={"key": "P0001"})
    return tr


class TestChromeTrace:
    def test_complete_events_schema(self):
        trace = chrome_trace(_tracer_with_spans().spans)
        assert validate_chrome_trace(trace) == []
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["campaign", "features", "P0001"]
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] == WALL_PID

    def test_parent_ids_in_args(self):
        tr = _tracer_with_spans()
        trace = chrome_trace(tr.spans)
        by_name = {
            e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"
        }
        run, stage = by_name["campaign"], by_name["features"]
        assert "parent_id" not in run["args"]
        assert stage["args"]["parent_id"] == run["args"]["span_id"]

    def test_instant_events(self):
        tr = _tracer_with_spans()
        trace = chrome_trace(tr.spans, tr.events)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "cache.miss"
        assert instants[0]["s"] == "t"
        assert validate_chrome_trace(trace) == []

    def test_pid_per_clock_domain(self):
        wall = _tracer_with_spans().spans
        sim = spans_from_records(
            simulate_dataflow(
                [TaskSpec(key="t0", size_hint=1.0)],
                make_workers(1, 1),
                lambda t: 1.0,
            ).records
        )
        trace = chrome_trace(wall + sim)
        pids = {e["name"]: e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids["campaign"] == WALL_PID
        assert pids["t0"] == SIM_PID
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names[(WALL_PID, 0)] == "wall clock (s)"
        assert names[(SIM_PID, 0)] == "simulated clock (s)"

    def test_worker_lanes_get_thread_names(self):
        trace = chrome_trace(_tracer_with_spans().spans)
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert thread_names[0] == "pipeline"
        assert "w1" in thread_names.values()

    def test_open_spans_skipped(self):
        tr = Tracer()
        tr.start_span("stage", "never-finished")
        trace = chrome_trace(tr.spans)
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []

    def test_write_accepts_tracer(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, _tracer_with_spans())
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert any(e["name"] == "cache.miss" for e in loaded["traceEvents"])


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": {}}) != []

    def test_rejects_bad_events(self):
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 1, "tid": 1},
                {"ph": "X", "name": "", "pid": 1, "tid": 1, "ts": 0, "dur": 1,
                 "cat": "c"},
                {"ph": "X", "name": "n", "pid": "one", "tid": 1, "ts": 0,
                 "dur": 1, "cat": "c"},
                {"ph": "X", "name": "n", "pid": 1, "tid": 1, "ts": -5,
                 "dur": 1, "cat": "c"},
                {"ph": "i", "name": "n", "pid": 1, "tid": 1, "ts": 0,
                 "cat": "c", "s": "x"},
            ]
        }
        errors = validate_chrome_trace(bad)
        assert len(errors) == 5


class TestLaneRoundTrip:
    def test_lanes_match_legacy_gantt(self):
        tasks = [TaskSpec(key=f"t{i}", size_hint=float(i % 5 + 1)) for i in range(40)]
        run = simulate_dataflow(tasks, make_workers(2, 3), lambda t: t.size_hint)
        trace = chrome_trace(spans_from_records(run.records))
        lanes = lanes_from_trace(trace, pid=SIM_PID)
        legacy = {lane.short_id: lane for lane in extract_gantt(run.records)}
        assert {wid[-6:] for wid in lanes} == set(legacy)
        for wid, intervals in lanes.items():
            oracle = legacy[wid[-6:]]
            assert len(intervals) == oracle.n_tasks
            busy = sum(e - s for s, e in intervals)
            assert busy == pytest.approx(oracle.busy_seconds, rel=1e-9)

    def test_category_and_pid_filters(self):
        tr = _tracer_with_spans()
        trace = chrome_trace(tr.spans)
        assert lanes_from_trace(trace, category="stage") != {}
        assert lanes_from_trace(trace, pid=SIM_PID) == {}


class TestMetricsExport:
    def test_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("feature.cache.hits").inc(3)
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        payload = write_metrics_json(tmp_path / "metrics.json", reg)
        loaded = json.loads((tmp_path / "metrics.json").read_text())
        assert loaded == payload
        assert loaded["counters"]["feature.cache.hits"] == 3.0
        assert loaded["histograms"]["lat"]["counts"] == [0, 1, 0]

    def test_csv_rows(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        path = tmp_path / "metrics.csv"
        write_metrics_csv(path, reg)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "metric,kind,value"
        kinds = {line.split(",")[1] for line in lines[1:]}
        assert kinds == {"counter", "gauge", "histogram"}


class TestManifest:
    def test_standard_fields(self):
        manifest = build_manifest(preset="genome", seed=7)
        assert manifest["schema"] == "repro.telemetry.manifest/1"
        assert manifest["preset"] == "genome"
        assert manifest["seed"] == 7
        assert "repro_version" in manifest
        assert "python" in manifest

    def test_json_serializable(self):
        json.dumps(build_manifest(wall_seconds=1.25))
