"""End-to-end: an instrumented ProteomePipeline run and its artifacts."""

import json

import pytest

from repro.cache import FeatureCache
from repro.core import ProteomePipeline
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.sequences import SequenceUniverse, synthetic_proteome
from repro.telemetry import (
    SIM_PID,
    TelemetrySession,
    lanes_from_trace,
    load_run,
    render_report,
    validate_chrome_trace,
)


@pytest.fixture(scope="module")
def instrumented_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("telemetry_run")
    universe = SequenceUniverse(13)
    proteome = synthetic_proteome(
        "D_vulgaris", universe=universe, seed=13, scale=0.002
    )
    suite = build_suite(universe, ["D_vulgaris"], seed=13, scale=0.002)
    pipeline = ProteomePipeline(
        feature_nodes=4,
        inference_nodes=2,
        relax_nodes=1,
        feature_cache=FeatureCache(),
        telemetry=TelemetrySession(run_dir),
    )
    result = pipeline.run(proteome, suite, NativeFactory(universe))
    return run_dir, result


class TestArtifacts:
    def test_three_artifacts_written_and_valid(self, instrumented_run):
        run_dir, _ = instrumented_run
        for name in ("manifest.json", "trace.json", "metrics.json"):
            assert (run_dir / name).exists(), name
        trace = json.loads((run_dir / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []

    def test_manifest_provenance(self, instrumented_run):
        run_dir, result = instrumented_run
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["schema"] == "repro.telemetry.manifest/1"
        assert manifest["preset"] == "genome"
        assert manifest["n_targets"] == len(result.inference_stage.top_models)
        assert len(manifest["library_fingerprint"]) == 64
        assert manifest["wall_seconds"] > 0
        sim = manifest["sim_walltime_seconds"]
        assert set(sim) == {"features", "inference", "relax"}
        assert all(v > 0 for v in sim.values())

    def test_required_metrics_present(self, instrumented_run):
        run_dir, _ = instrumented_run
        metrics = json.loads((run_dir / "metrics.json").read_text())
        counters, histograms = metrics["counters"], metrics["histograms"]
        # task-latency histograms per stage
        for stage in ("feature", "inference", "relax"):
            hist = histograms[f"{stage}.task.latency_seconds"]
            assert hist["count"] > 0
        # cache hit/miss (cold cache: all misses)
        assert counters["feature.cache.misses"] > 0
        assert "feature.cache.hits" in counters
        # retry/OOM accounting exists even when clean
        for stage in ("feature", "inference", "relax"):
            assert f"{stage}.task.retries" in counters
            assert f"{stage}.task.oom_escalations" in counters
        # Verlet neighbour-list economics from the relax stage
        assert counters["relax.verlet.rebuilds"] > 0
        assert counters["relax.minimize.count"] > 0
        # recycling stops were recorded
        assert (
            counters["fold.recycle.early_stops"]
            + counters["fold.recycle.cap_stops"]
            > 0
        )

    def test_span_tree_and_sim_lanes(self, instrumented_run):
        run_dir, result = instrumented_run
        trace = json.loads((run_dir / "trace.json").read_text())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_cat = {}
        for e in xs:
            by_cat.setdefault(e["cat"], []).append(e)
        assert len(by_cat["run"]) == 1
        assert [e["name"] for e in sorted(by_cat["stage"], key=lambda e: e["ts"])] == [
            "features", "inference", "relax",
        ]
        run_id = by_cat["run"][0]["args"]["span_id"]
        stage_ids = {e["args"]["span_id"] for e in by_cat["stage"]}
        assert all(e["args"]["parent_id"] == run_id for e in by_cat["stage"])
        # every task span hangs under a stage span
        assert all(
            e["args"]["parent_id"] in stage_ids for e in by_cat["task"]
        )
        # simulated lanes are sequential (stage offsets): total busy time
        # per lane never exceeds the simulated makespan
        lanes = lanes_from_trace(trace, pid=SIM_PID)
        assert lanes
        makespan = max(iv[-1][1] for iv in lanes.values())
        for intervals in lanes.values():
            busy = sum(e - s for s, e in intervals)
            assert busy <= makespan + 1e-9

    def test_stage_metric_thin_views(self, instrumented_run):
        _, result = instrumented_run
        fs, rx = result.feature_stage, result.relax_stage
        assert fs.cache_misses == fs.stage_metrics["feature.cache.misses"]
        assert fs.cache_hits == 0
        assert rx.verlet_rebuilds == rx.stage_metrics["relax.verlet.rebuilds"]
        assert rx.verlet_rebuilds > 0

    def test_report_renders(self, instrumented_run):
        run_dir, _ = instrumented_run
        text = render_report(load_run(run_dir))
        assert "stages (wall clock):" in text
        assert "simulated tasks:" in text
        assert "relax.verlet.rebuilds" in text


def test_second_run_with_warm_cache(tmp_path):
    universe = SequenceUniverse(5)
    proteome = synthetic_proteome(
        "D_vulgaris", universe=universe, seed=5, scale=0.0015
    )
    suite = build_suite(universe, ["D_vulgaris"], seed=5, scale=0.0015)
    factory = NativeFactory(universe)
    cache = FeatureCache()

    def run_once(run_dir):
        pipeline = ProteomePipeline(
            feature_nodes=2,
            inference_nodes=1,
            relax_nodes=1,
            feature_cache=cache,
            telemetry=TelemetrySession(run_dir),
        )
        return pipeline.run(proteome, suite, factory)

    cold = run_once(tmp_path / "cold")
    warm = run_once(tmp_path / "warm")
    assert cold.feature_stage.cache_misses > 0
    assert cold.feature_stage.cache_hits == 0
    assert warm.feature_stage.cache_hits == cold.feature_stage.cache_misses
    assert warm.feature_stage.cache_misses == 0
    # science identical either way
    assert warm.inference_stage.mean_top_plddt() == pytest.approx(
        cold.inference_stage.mean_top_plddt()
    )
    warm_metrics = json.loads((tmp_path / "warm" / "metrics.json").read_text())
    assert warm_metrics["counters"]["feature.cache.hits"] > 0
