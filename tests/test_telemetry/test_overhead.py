"""No-op tracer overhead guard.

The instrumentation contract is one branch per event when tracing is
off: hot loops (BENCH_relax/BENCH_fold kernels, executor task dispatch)
must not slow down because spans exist.  Timing two whole loops
back-to-back measures machine noise on a busy single-core runner
(block-to-block variance is far larger than the effect), so the guard
measures the two costs separately — the per-event price of a disabled
span over many thousand events, and the per-iteration floor of a
representative numpy workload — and bounds their ratio at 5%.
"""

import time

import numpy as np

from repro.telemetry import get_tracer


def _span_event(tracer) -> None:
    """One instrumented no-op event, exactly as hot call sites write it."""
    with tracer.span("task", "bench") as span:
        if span is not None:
            span.set_attr("ok", True)


def _per_event_cost(n: int = 50_000, repeats: int = 5) -> float:
    """Seconds per disabled-span event (empty-loop cost subtracted)."""
    tracer = get_tracer()
    best_span = best_empty = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n):
            _span_event(tracer)
        best_span = min(best_span, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(n):
            pass
        best_empty = min(best_empty, time.perf_counter() - t0)
    return max(best_span - best_empty, 0.0) / n


def _per_task_floor(n: int = 200, repeats: int = 5) -> float:
    """Seconds per iteration of a small representative task kernel."""
    x = np.random.default_rng(0).normal(size=(120, 120))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n):
            float((x @ x.T).trace())
        best = min(best, time.perf_counter() - t0)
    return best / n


def test_null_tracer_overhead_under_5_percent():
    assert get_tracer().enabled is False
    span_cost = _per_event_cost()
    task_cost = _per_task_floor()
    ratio = span_cost / task_cost
    assert ratio < 0.05, (
        f"disabled span costs {span_cost * 1e9:.0f} ns/event — "
        f"{ratio:.1%} of a {task_cost * 1e6:.0f} us task; the one-branch "
        "contract is broken"
    )


def test_null_tracer_yields_none_and_records_nothing():
    tracer = get_tracer()
    with tracer.span("task", "x") as span:
        assert span is None
    tracer.event("anything")
    tracer.complete("task", "y", 0.0, 1.0)
    tracer.extend([])
    assert not hasattr(tracer, "spans")
