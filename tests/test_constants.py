"""Sanity tests pinning the paper-quoted constants.

These are the numbers the paper states explicitly; if someone edits
them, every calibrated benchmark silently drifts — so they are pinned
here with the section references.
"""

from repro import constants as C


def test_violation_definitions():  # §3.2.3
    assert C.CLASH_CUTOFF_ANGSTROM == 1.9
    assert C.BUMP_CUTOFF_ANGSTROM == 3.6
    assert C.MAX_CLASHES_FOR_CLEAN_MODEL == 4
    assert C.MAX_BUMPS_FOR_CLEAN_MODEL == 50


def test_relaxation_protocol():  # §3.2.3
    assert C.RELAX_ENERGY_TOLERANCE_KCAL == 2.39
    assert C.RELAX_RESTRAINT_K == 10.0


def test_recycling_control():  # §3.2.2
    assert C.GENOME_RECYCLE_TOLERANCE == 0.5
    assert C.SUPER_RECYCLE_TOLERANCE == 0.1
    assert C.MAX_RECYCLES == 20
    assert C.MIN_RECYCLES_LONG_SEQUENCE == 6
    assert C.RECYCLE_TAPER_START_LENGTH == 500
    assert C.OFFICIAL_PRESET_RECYCLES == 3
    assert C.REDUCED_DBS_ENSEMBLES == 1
    assert C.CASP14_ENSEMBLES == 8
    assert C.MAX_PROTEOME_SEQUENCE_LENGTH == 2500


def test_dataset_sizes():  # §3.2.1
    assert C.FULL_DATASET_BYTES == 2_100_000_000_000
    assert C.REDUCED_DATASET_BYTES == 420_000_000_000
    assert C.LIBRARY_REPLICA_COUNT == 24
    assert C.JOBS_PER_LIBRARY_REPLICA == 4
    # Full is exactly 5x the reduced, the paper's storage argument.
    assert C.FULL_DATASET_BYTES == 5 * C.REDUCED_DATASET_BYTES


def test_machine_shapes():  # §3
    assert C.SUMMIT_NODE_COUNT == 4600
    assert C.SUMMIT_GPUS_PER_NODE == 6
    assert C.ANDES_NODE_COUNT == 704
    assert C.ANDES_CORES_PER_NODE == 32


def test_species_counts_sum():  # §4 / abstract
    counts = C.SPECIES_STRUCTURE_COUNTS
    assert counts["P_mercurii"] == 3446
    assert counts["R_rubrum"] == 3849
    assert counts["D_vulgaris"] == 3205
    assert counts["S_divinum"] == 25134
    assert sum(counts.values()) == 35634 == C.TOTAL_SEQUENCES


def test_benchmark_shape():  # §4.2
    assert C.BENCHMARK_SET_SIZE == 559
    assert C.BENCHMARK_MIN_LENGTH == 29
    assert C.BENCHMARK_MAX_LENGTH == 1266
    assert C.BENCHMARK_MEAN_LENGTH == 202


def test_quality_thresholds():  # §4.2, §4.3.1
    assert C.HIGH_QUALITY_PLDDT == 70.0
    assert C.ULTRA_HIGH_PLDDT == 90.0
    assert C.HIGH_QUALITY_PTMS == 0.60


def test_reported_costs():  # §4.1, §4.3.1, §4.5, Table 1
    assert C.DVULGARIS_FEATURE_NODE_HOURS == 240.0
    assert C.DVULGARIS_INFERENCE_NODE_HOURS == 400.0
    assert C.SDIVINUM_FEATURE_NODE_HOURS == 2000.0
    assert C.SDIVINUM_INFERENCE_NODE_HOURS == 3000.0
    assert C.TABLE1_WALLTIME_MINUTES["reduced_db"] == 44.0
    assert C.GENOME_RELAX_MINUTES == 22.89
    assert C.GENOME_RELAX_WORKERS == 48
    assert C.MAX_DEPLOYED_NODES == 1000
    assert C.MAX_DEPLOYED_WORKERS == 6000


def test_casp_set_sizes():  # §4.4
    assert C.CASP_TARGETS_WITH_CRYSTALS == 19
    assert C.CASP_TOTAL_MODELS == 160
