"""Tests for synthetic proteome generation."""

import numpy as np
import pytest

from repro.constants import SPECIES_STRUCTURE_COUNTS
from repro.sequences import SPECIES, Proteome, synthetic_proteome
from repro.sequences.proteome import species_family_base


def test_species_catalog_matches_paper_counts():
    for name, count in SPECIES_STRUCTURE_COUNTS.items():
        assert SPECIES[name].n_proteins == count


def test_species_family_bases_disjoint():
    bases = [species_family_base(s) for s in SPECIES]
    assert len(set(bases)) == len(bases)
    for a in bases:
        for b in bases:
            if a != b:
                assert abs(a - b) >= 10_000


def test_unknown_species_raises():
    with pytest.raises(KeyError):
        synthetic_proteome("E_coli")


def test_bad_scale_raises():
    with pytest.raises(ValueError):
        synthetic_proteome("D_vulgaris", scale=0.0)
    with pytest.raises(ValueError):
        synthetic_proteome("D_vulgaris", scale=1.5)


def test_scaled_count(proteome):
    expected = int(round(SPECIES["D_vulgaris"].n_proteins * 0.02))
    # filter_max_length may remove a few very long sequences
    assert expected * 0.9 <= len(proteome) <= expected


def test_deterministic(universe):
    p1 = synthetic_proteome("D_vulgaris", universe=universe, seed=7, scale=0.01)
    p2 = synthetic_proteome("D_vulgaris", universe=universe, seed=7, scale=0.01)
    assert [r.record_id for r in p1] == [r.record_id for r in p2]
    assert all((a.encoded == b.encoded).all() for a, b in zip(p1, p2))


def test_max_length_respected(proteome):
    assert proteome.lengths().max() <= 2500


def test_mean_length_plausible(universe):
    prot = synthetic_proteome("D_vulgaris", universe=universe, seed=1, scale=0.1)
    assert 220 <= prot.mean_length() <= 420  # paper: ~328 AA


def test_orphans_present_and_unannotated(proteome):
    orphans = [r for r in proteome if r.family_id is None]
    assert orphans, "expected some orphan proteins"
    assert all(not r.annotated for r in orphans)
    assert all(r.divergence == 1.0 for r in orphans)


def test_hypothetical_subset(proteome):
    hypo = proteome.hypothetical()
    assert 0 < len(hypo) < len(proteome)
    assert all(not r.annotated for r in hypo)


def test_sorted_by_length_descending(proteome):
    lengths = proteome.sorted_by_length().lengths()
    assert (np.diff(lengths) <= 0).all()


def test_sorted_by_length_ascending(proteome):
    lengths = proteome.sorted_by_length(descending=False).lengths()
    assert (np.diff(lengths) >= 0).all()


def test_filter_max_length(proteome):
    short = proteome.filter_max_length(200)
    assert short.lengths().max() <= 200
    assert len(short) < len(proteome)


def test_subset(proteome):
    ids = [proteome[0].record_id, proteome[3].record_id]
    sub = proteome.subset(ids)
    assert len(sub) == 2
    assert {r.record_id for r in sub} == set(ids)


def test_slicing_returns_proteome(proteome):
    sub = proteome[:5]
    assert isinstance(sub, Proteome)
    assert len(sub) == 5
    assert sub.species == proteome.species


def test_plant_proteome_shape(universe):
    plant = synthetic_proteome("S_divinum", universe=universe, seed=7, scale=0.005)
    bact = synthetic_proteome("D_vulgaris", universe=universe, seed=7, scale=0.02)
    # Plant proteomes skew harder: more orphans, more hypothetical.
    frac_orphan_plant = np.mean([r.family_id is None for r in plant])
    frac_orphan_bact = np.mean([r.family_id is None for r in bact])
    assert frac_orphan_plant > frac_orphan_bact


def test_record_ids_unique(proteome):
    ids = [r.record_id for r in proteome]
    assert len(set(ids)) == len(ids)
