"""FASTA round-trip and error handling tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequences import (
    AMINO_ACIDS,
    ProteinRecord,
    encode,
    format_fasta,
    parse_fasta,
    read_fasta,
    write_fasta,
)


def _rec(rid, seq, desc=""):
    return ProteinRecord(record_id=rid, encoded=encode(seq), description=desc)


def test_roundtrip_file(tmp_path, proteome):
    path = tmp_path / "out.fasta"
    records = list(proteome)[:10]
    write_fasta(records, path)
    back = read_fasta(path)
    assert [r.record_id for r in back] == [r.record_id for r in records]
    assert all((a.encoded == b.encoded).all() for a, b in zip(back, records))


def test_description_preserved():
    rec = _rec("id1", "ACDEF", "some description here")
    parsed = list(parse_fasta(format_fasta([rec])))[0]
    assert parsed.record_id == "id1"
    assert parsed.description == "some description here"


def test_long_sequences_wrapped():
    rec = _rec("long", "A" * 150)
    text = format_fasta([rec])
    body = [ln for ln in text.splitlines() if not ln.startswith(">")]
    assert max(len(ln) for ln in body) == 60
    assert "".join(body) == "A" * 150


def test_parse_rejects_empty_sequence():
    with pytest.raises(ValueError):
        list(parse_fasta(">id1\n>id2\nACDEF\n"))


def test_parse_rejects_headerless_data():
    with pytest.raises(ValueError):
        list(parse_fasta("ACDEF\n"))


def test_parse_rejects_empty_header():
    with pytest.raises(ValueError):
        list(parse_fasta(">\nACDEF\n"))


def test_parse_lowercase_normalised():
    rec = list(parse_fasta(">x\nacdef\n"))[0]
    assert rec.sequence == "ACDEF"


def test_parse_skips_blank_lines():
    recs = list(parse_fasta("\n>x\nAC\n\nDEF\n\n>y\nGGG\n"))
    assert [r.sequence for r in recs] == ["ACDEF", "GGG"]


@given(
    st.lists(
        st.tuples(
            st.integers(0, 10_000),
            st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=120),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_roundtrip_property(items):
    records = [_rec(f"rec{i}_{rid}", seq) for i, (rid, seq) in enumerate(items)]
    back = list(parse_fasta(format_fasta(records)))
    assert [r.sequence for r in back] == [r.sequence for r in records]
    assert [r.record_id for r in back] == [r.record_id for r in records]
