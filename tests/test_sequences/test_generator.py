"""Unit and property tests for sequence generation and mutation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences import (
    SequenceUniverse,
    mutate_sequence,
    random_sequence,
    rng_for,
)
from repro.sequences.generator import stable_hash


class TestRngFor:
    def test_deterministic(self):
        a = rng_for(1, "x", 2).random(8)
        b = rng_for(1, "x", 2).random(8)
        assert (a == b).all()

    def test_distinct_streams(self):
        a = rng_for(1, "x").random(8)
        b = rng_for(1, "y").random(8)
        assert not (a == b).all()

    def test_seed_matters(self):
        assert not (rng_for(1, "x").random(4) == rng_for(2, "x").random(4)).all()


class TestStableHash:
    def test_deterministic_and_bounded(self):
        h = stable_hash("abc", 42)
        assert h == stable_hash("abc", 42)
        assert 0 <= h < 2**31

    def test_modulus(self):
        for m in (7, 997, 10_000):
            assert 0 <= stable_hash("s", modulus=m) < m

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")


class TestRandomSequence:
    def test_length_and_range(self, rng):
        seq = random_sequence(500, rng)
        assert seq.size == 500
        assert seq.dtype == np.uint8
        assert seq.max() < 20

    def test_rejects_zero_length(self, rng):
        with pytest.raises(ValueError):
            random_sequence(0, rng)

    def test_composition_roughly_background(self, rng):
        seq = random_sequence(50_000, rng)
        freq = np.bincount(seq, minlength=20) / seq.size
        from repro.sequences.alphabet import BACKGROUND_FREQUENCIES

        assert np.abs(freq - BACKGROUND_FREQUENCIES).max() < 0.01


class TestMutateSequence:
    def test_zero_rate_is_identity(self, rng):
        seq = random_sequence(300, rng)
        assert (mutate_sequence(seq, rng, 0.0) == seq).all()

    def test_input_not_modified(self, rng):
        seq = random_sequence(300, rng)
        orig = seq.copy()
        mutate_sequence(seq, rng, 0.5, indel_rate=0.05)
        assert (seq == orig).all()

    def test_rejects_bad_rate(self, rng):
        seq = random_sequence(10, rng)
        with pytest.raises(ValueError):
            mutate_sequence(seq, rng, 1.5)

    @given(rate=st.floats(0.05, 0.9), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_divergence_tracks_rate(self, rate, seed):
        rng = np.random.default_rng(seed)
        seq = random_sequence(2000, rng)
        mut = mutate_sequence(seq, rng, rate)
        observed = float((mut != seq).mean())
        # Substitutions resample from background: expected observed
        # change rate is rate * (1 - p_same) ~ rate * 0.94.
        assert observed == pytest.approx(rate * 0.94, abs=0.06)

    def test_indels_change_length_sometimes(self, rng):
        seq = random_sequence(500, rng)
        lengths = {
            mutate_sequence(seq, rng, 0.1, indel_rate=0.1).size for _ in range(10)
        }
        assert len(lengths) > 1


class TestSequenceUniverse:
    def test_family_deterministic(self):
        u1, u2 = SequenceUniverse(3), SequenceUniverse(3)
        f1, f2 = u1.family(42), u2.family(42)
        assert (f1.ancestor == f2.ancestor).all()
        assert f1.fold_seed == f2.fold_seed
        assert f1.library_multiplicity == f2.library_multiplicity

    def test_family_cached(self, universe):
        assert universe.family(5) is universe.family(5)

    def test_families_differ(self, universe):
        a, b = universe.family(1), universe.family(2)
        assert a.fold_seed != b.fold_seed

    def test_rejects_negative_family(self, universe):
        with pytest.raises(ValueError):
            universe.family(-1)

    def test_length_bounds(self):
        uni = SequenceUniverse(0, min_length=50, max_length=100)
        for fid in range(30):
            assert 50 <= uni.family(fid).length <= 100

    def test_family_length_exact(self, universe):
        fam = universe.family_length(9, 137)
        assert fam.length == 137
        assert fam.fold_seed == universe.family(9).fold_seed

    def test_family_length_rejects_out_of_bounds(self, universe):
        with pytest.raises(ValueError):
            universe.family_length(9, universe.max_length + 1)

    def test_member_divergence(self, universe):
        fam = universe.family(11)
        member = universe.member(fam, 0.3, member_seed=1, indel_rate=0.0)
        identity = float((member == fam.ancestor).mean())
        assert 0.6 < identity < 0.85

    def test_members_deterministic(self, universe):
        fam = universe.family(11)
        m1 = universe.member(fam, 0.3, member_seed=5)
        m2 = universe.member(fam, 0.3, member_seed=5)
        assert (m1 == m2).all()

    def test_orphan_deterministic(self, universe):
        a = universe.orphan(8, 90)
        b = universe.orphan(8, 90)
        assert (a == b).all()
        assert a.size == 90

    def test_multiplicity_spread(self):
        uni = SequenceUniverse(0)
        mults = [uni.family(i).library_multiplicity for i in range(300)]
        assert min(mults) == 0  # some unsequenced families exist
        assert max(mults) > 50  # and some very deep ones
