"""Unit tests for the amino-acid alphabet and encodings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequences import alphabet as ab
from repro.sequences.alphabet import (
    AMINO_ACIDS,
    ALPHABET_SIZE,
    decode,
    encode,
    heavy_atom_count,
    hydrogen_count,
    is_valid_sequence,
    molecular_weight,
)

sequences = st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=200)


def test_alphabet_has_20_unique_residues():
    assert ALPHABET_SIZE == 20
    assert len(set(AMINO_ACIDS)) == 20


def test_background_frequencies_normalised():
    assert ab.BACKGROUND_FREQUENCIES.shape == (20,)
    assert ab.BACKGROUND_FREQUENCIES.sum() == pytest.approx(1.0)
    assert (ab.BACKGROUND_FREQUENCIES > 0).all()


def test_encode_basic():
    enc = encode("ACDEFGHIKLMNPQRSTVWY")
    assert enc.dtype == np.uint8
    assert (enc == np.arange(20)).all()


def test_encode_rejects_nonstandard():
    with pytest.raises(ValueError):
        encode("ACDX")


def test_decode_rejects_out_of_range():
    with pytest.raises(ValueError):
        decode(np.array([200], dtype=np.uint8))


@given(sequences)
def test_encode_decode_roundtrip(seq):
    assert decode(encode(seq)) == seq


@given(sequences)
def test_molecular_weight_positive_and_additive(seq):
    enc = encode(seq)
    mw = molecular_weight(enc)
    # At least ~57 Da (glycine) per residue plus water.
    assert mw >= 57.0 * len(seq)
    assert mw <= 187.0 * len(seq) + 19.0


def test_molecular_weight_empty():
    assert molecular_weight(np.empty(0, dtype=np.uint8)) == 0.0


@given(sequences)
def test_heavy_atoms_bounds(seq):
    enc = encode(seq)
    n = heavy_atom_count(enc)
    # Glycine has 4 heavy atoms, tryptophan 14, plus the terminal OXT.
    assert 4 * len(seq) + 1 <= n <= 14 * len(seq) + 1


@given(sequences)
def test_hydrogen_count_positive(seq):
    assert hydrogen_count(encode(seq)) >= 3 * len(seq)


def test_is_valid_sequence():
    assert is_valid_sequence("ACDEF")
    assert not is_valid_sequence("ACDEF*")
    assert not is_valid_sequence("acdef")
