"""Scheduling strategy and LPT reference tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduling import (
    ORDERINGS,
    evaluate_ordering,
    lpt_bound,
    order_tasks,
)
from repro.dataflow import TaskSpec, make_workers, simulate_dataflow


def _tasks(sizes):
    return [TaskSpec(key=f"t{i}", size_hint=float(s)) for i, s in enumerate(sizes)]


class TestOrderings:
    def test_catalog(self):
        assert set(ORDERINGS) == {"descending", "ascending", "random", "submission"}

    def test_descending(self):
        out = order_tasks(_tasks([3, 9, 1]), "descending")
        assert [t.size_hint for t in out] == [9, 3, 1]

    def test_ascending(self):
        out = order_tasks(_tasks([3, 9, 1]), "ascending")
        assert [t.size_hint for t in out] == [1, 3, 9]

    def test_submission_preserves(self):
        tasks = _tasks([3, 9, 1])
        assert order_tasks(tasks, "submission") == tasks

    def test_random_seeded(self):
        tasks = _tasks(range(30))
        a = order_tasks(tasks, "random", rng=np.random.default_rng(1))
        b = order_tasks(tasks, "random", rng=np.random.default_rng(1))
        assert a == b

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            order_tasks([], "optimal")

    def test_input_not_mutated(self):
        tasks = _tasks([3, 9, 1])
        order_tasks(tasks, "descending")
        assert [t.size_hint for t in tasks] == [3, 9, 1]


class TestLPTBound:
    def test_single_worker_is_sum(self):
        assert lpt_bound([3, 4, 5], 1) == 12

    def test_more_workers_than_tasks(self):
        assert lpt_bound([3, 4, 5], 10) == 5

    def test_classic_case(self):
        # The classic LPT suboptimality instance: LPT gives 11 on
        # {5,5,4,4,3,3,3} with 3 workers while the optimum is 9 —
        # within the 4/3 guarantee.
        assert lpt_bound([5, 5, 4, 4, 3, 3, 3], 3) == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_bound([1.0], 0)

    @given(
        sizes=st.lists(st.floats(0.1, 100), min_size=1, max_size=60),
        workers=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds_sandwich(self, sizes, workers):
        span = lpt_bound(sizes, workers)
        # Lower bounds: max task and mean load; upper: sum of all.
        assert span >= max(sizes) - 1e-9
        assert span >= sum(sizes) / workers - 1e-9
        assert span <= sum(sizes) + 1e-9


class TestEvaluation:
    def test_dataflow_descending_matches_lpt(self):
        rng = np.random.default_rng(3)
        sizes = rng.lognormal(3, 1, size=400)
        tasks = _tasks(sizes)
        workers = make_workers(2, 4)
        ordered = order_tasks(tasks, "descending")
        result = simulate_dataflow(
            ordered, workers, lambda t: t.size_hint,
            sort_descending=False, task_overhead=0.0, startup=0.0,
        )
        ev = evaluate_ordering("descending", result, list(sizes))
        # Dataflow + descending submission IS the LPT schedule.
        assert ev.lpt_ratio == pytest.approx(1.0, abs=1e-9)
        assert ev.utilization > 0.9

    def test_ascending_worse_spread(self):
        rng = np.random.default_rng(4)
        sizes = list(rng.lognormal(3, 1, size=300)) + [400.0] * 3
        workers = make_workers(2, 4)
        runs = {}
        for name in ("descending", "ascending"):
            ordered = order_tasks(_tasks(sizes), name)
            runs[name] = simulate_dataflow(
                ordered, workers, lambda t: t.size_hint,
                sort_descending=False, task_overhead=0.0, startup=0.0,
            )
        assert (
            runs["descending"].finish_spread_seconds()
            < runs["ascending"].finish_spread_seconds()
        )
