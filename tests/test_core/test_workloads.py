"""Workload builder tests: Table 1 benchmark set and CASP-like targets."""

import pytest

from repro.constants import BENCHMARK_MIN_LENGTH
from repro.core import benchmark_set, benchmark_suite, casp_targets
from repro.fold import inference_memory_bytes, standard_worker_memory_bytes
from repro.sequences import SequenceUniverse


@pytest.fixture(scope="module")
def small_bench():
    uni = SequenceUniverse(4)
    return benchmark_set(uni, seed=4, n_sequences=80)


class TestBenchmarkSet:
    def test_count_and_extremes(self, small_bench):
        assert len(small_bench) == 80
        lengths = small_bench.lengths()
        assert lengths.min() == BENCHMARK_MIN_LENGTH
        assert lengths.max() == 1266

    def test_mean_near_paper(self):
        uni = SequenceUniverse(0)
        bench = benchmark_set(uni, seed=0)
        assert len(bench) == 559
        assert 160 <= bench.mean_length() <= 245  # paper: 202

    def test_exactly_eight_exceed_casp14_wall(self, small_bench):
        budget = standard_worker_memory_bytes()
        over = [
            r
            for r in small_bench
            if inference_memory_bytes(r.length, 8) > budget
        ]
        assert len(over) == 8

    def test_oversized_records_names_the_designed_tail(self, small_bench):
        from repro.core import oversized_records

        over = oversized_records(small_bench, n_ensembles=8)
        assert len(over) == 8
        lengths = {r.record_id: r.length for r in small_bench}
        assert all(lengths[rid] >= 880 for rid in over)
        # single-ensemble runs fit standard workers across this set
        assert oversized_records(small_bench, n_ensembles=1) == []

    def test_deterministic(self):
        uni = SequenceUniverse(4)
        a = benchmark_set(uni, seed=4, n_sequences=50)
        b = benchmark_set(SequenceUniverse(4), seed=4, n_sequences=50)
        assert all((x.encoded == y.encoded).all() for x, y in zip(a, b))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            benchmark_set(SequenceUniverse(0), n_sequences=5)

    def test_suite_finds_benchmark_homologs(self):
        uni = SequenceUniverse(4)
        bench = benchmark_set(uni, seed=4, n_sequences=60)
        suite = benchmark_suite(uni, seed=4, n_sequences=60)
        from repro.msa import generate_features

        depths = [generate_features(r, suite).msa_depth for r in list(bench)[:10]]
        assert max(depths) > 5


class TestCaspTargets:
    @pytest.fixture(scope="class")
    def targets(self):
        return casp_targets(n_targets=6, models_per_target=3, seed=5)

    def test_shapes(self, targets):
        assert len(targets) == 6
        for t in targets:
            assert len(t.models) == 3
            assert len(t.native) == t.record.length
            assert t.best_model.ptms == max(m.ptms for m in t.models)

    def test_outlier_present(self, targets):
        assert max(len(t.native) for t in targets) == 1438

    def test_no_outlier_option(self):
        targets = casp_targets(n_targets=3, models_per_target=1, seed=5,
                               include_outlier=False)
        assert max(len(t.native) for t in targets) <= 950

    def test_quality_spread(self, targets):
        tms = [t.best_model.true_tm for t in targets]
        assert max(tms) > 0.75  # some excellent models, as in CASP14

    def test_validation(self):
        with pytest.raises(ValueError):
            casp_targets(n_targets=0)
