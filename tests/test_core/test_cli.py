"""CLI tests (subprocess-free: drive main() directly)."""

import csv

import pytest

from repro.cli import build_parser, main


def test_parser_version():
    parser = build_parser()
    with pytest.raises(SystemExit) as exc:
        parser.parse_args(["--version"])
    assert exc.value.code == 0


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_predict_writes_pdbs_and_csv(tmp_path, capsys):
    rc = main(
        [
            "predict",
            "--species", "P_mercurii",
            "--scale", "0.002",
            "--max-targets", "2",
            "--seed", "3",
            "--out", str(tmp_path),
        ]
    )
    assert rc == 0
    pdbs = list(tmp_path.glob("*.pdb"))
    assert len(pdbs) == 2
    with open(tmp_path / "summary.csv") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2
    assert {"record_id", "plddt", "ptms", "recycles"} <= set(rows[0])
    out = capsys.readouterr().out
    assert "pLDDT" in out


def test_relax_roundtrip(tmp_path, capsys, factory, proteome):
    from repro.structure import write_pdb

    native = factory.native(proteome[0])
    src = tmp_path / "model.pdb"
    write_pdb(native, src)
    rc = main(["relax", str(src)])
    assert rc == 0
    assert (tmp_path / "model_relaxed.pdb").exists()
    assert "clashes" in capsys.readouterr().out


def test_campaign_summary(capsys):
    rc = main(
        [
            "campaign",
            "--species", "P_mercurii",
            "--scale", "0.002",
            "--seed", "5",
            "--feature-nodes", "2",
            "--inference-nodes", "1",
            "--relax-nodes", "1",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "node-h" in out
    assert "pLDDT>70" in out


CAMPAIGN_ARGS = [
    "campaign",
    "--species", "P_mercurii",
    "--scale", "0.002",
    "--seed", "5",
    "--feature-nodes", "2",
    "--inference-nodes", "1",
    "--relax-nodes", "1",
]


def test_campaign_state_dir_then_resume(tmp_path, capsys):
    state = tmp_path / "state"
    rc = main(CAMPAIGN_ARGS + ["--state-dir", str(state)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "state    :" in out
    assert (state / "ledger.jsonl").exists()

    # Re-running against a used state dir without --resume is refused.
    rc = main(CAMPAIGN_ARGS + ["--state-dir", str(state)])
    assert rc == 2
    assert "pass --resume" in capsys.readouterr().err

    rc = main(CAMPAIGN_ARGS + ["--state-dir", str(state), "--resume"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "resume   : skipped" in out
    assert "node-h" in out


def test_campaign_resume_requires_state_dir(capsys):
    rc = main(CAMPAIGN_ARGS + ["--resume"])
    assert rc == 2
    assert "--resume requires --state-dir" in capsys.readouterr().err


def test_table1_mini(capsys):
    rc = main(["table1", "--n", "14", "--presets", "reduced_db", "--seed", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "reduced_db" in out
