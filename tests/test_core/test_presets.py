"""Preset catalog tests (Table 1 configurations)."""

import pytest

from repro.core import PRESETS, get_preset


def test_catalog_contents():
    assert set(PRESETS) == {"reduced_db", "casp14", "genome", "super"}


def test_official_flags():
    assert PRESETS["reduced_db"].official
    assert PRESETS["casp14"].official
    assert not PRESETS["genome"].official
    assert not PRESETS["super"].official


def test_casp14_eight_ensembles():
    assert PRESETS["casp14"].n_ensembles == 8
    assert PRESETS["casp14"].max_recycles == 3


def test_custom_presets_adaptive():
    for name in ("genome", "super"):
        p = PRESETS[name]
        assert p.adaptive_cap
        assert p.max_recycles == 20
        assert p.recycle_tolerance is not None
    assert PRESETS["genome"].recycle_tolerance > PRESETS["super"].recycle_tolerance


def test_config_materialisation():
    cfg = PRESETS["genome"].config(kingdom_bias=0.2, memory_budget_bytes=123)
    assert cfg.recycle_tolerance == 0.5
    assert cfg.kingdom_bias == 0.2
    assert cfg.memory_budget_bytes == 123
    assert cfg.recycle_cap(2500) == 6
    assert cfg.recycle_cap(100) == 20


def test_official_config_fixed_cap():
    cfg = PRESETS["reduced_db"].config()
    assert cfg.recycle_cap(2500) == 3


def test_unknown_preset():
    with pytest.raises(KeyError):
        get_preset("fastest")
