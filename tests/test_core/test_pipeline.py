"""Pipeline stage tests on a miniature proteome."""

import numpy as np
import pytest

from repro.core import ProteomePipeline, kingdom_bias_for
from repro.core.stats import (
    benchmark_row,
    improvement_concentration,
    summarize_proteome,
)
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.sequences import SequenceUniverse, synthetic_proteome


@pytest.fixture(scope="module")
def mini():
    uni = SequenceUniverse(13)
    prot = synthetic_proteome("D_vulgaris", universe=uni, seed=13, scale=0.006)
    suite = build_suite(uni, ["D_vulgaris"], seed=13, scale=0.006)
    factory = NativeFactory(uni)
    return uni, prot, suite, factory


@pytest.fixture(scope="module")
def pipeline():
    return ProteomePipeline(
        preset_name="genome",
        feature_nodes=4,
        inference_nodes=2,
        relax_nodes=1,
    )


@pytest.fixture(scope="module")
def full_run(mini, pipeline):
    uni, prot, suite, factory = mini
    return pipeline.run(prot, suite, factory)


def test_kingdom_bias():
    assert kingdom_bias_for("S_divinum") > 0
    assert kingdom_bias_for("D_vulgaris") == 0.0
    assert kingdom_bias_for("unknown") == 0.0


def test_feature_stage(full_run, mini):
    _, prot, _, _ = mini
    fs = full_run.feature_stage
    assert set(fs.features) == {r.record_id for r in prot}
    assert fs.node_hours > 0
    assert fs.simulation.walltime_seconds > 0
    assert fs.plan.n_replicas == 24


def test_inference_stage(full_run, mini):
    _, prot, _, _ = mini
    inf = full_run.inference_stage
    assert len(inf.top_models) == len(prot)
    for rid, preds in inf.predictions.items():
        assert 1 <= len(preds) <= 5
        top = inf.top_models[rid]
        assert top.ptms == max(p.ptms for p in preds)
    # five tasks per target in the simulation
    assert len(inf.simulation.records) == 5 * len(prot)


def test_relax_stage(full_run):
    rx = full_run.relax_stage
    assert set(rx.outcomes) == set(full_run.inference_stage.top_models)
    for outcome in rx.outcomes.values():
        assert outcome.violations_after.n_clashes == 0


def test_node_hours_additive(full_run):
    assert full_run.total_node_hours == pytest.approx(
        full_run.feature_stage.node_hours
        + full_run.inference_stage.node_hours
        + full_run.relax_stage.node_hours
    )


def test_run_requires_factory(mini, pipeline):
    _, prot, suite, _ = mini
    with pytest.raises(ValueError):
        pipeline.run(prot, suite, None)


def test_stats_row(full_run):
    inf = full_run.inference_stage
    row = benchmark_row("genome", inf.top_models, 10.0)
    assert row.count == len(inf.top_models)
    assert 0 <= row.frac_plddt_high <= 1
    assert 0 < row.mean_ptms <= 1


def test_summarize_proteome(full_run):
    summary = summarize_proteome(full_run.inference_stage.top_models)
    assert summary.n_targets == len(full_run.inference_stage.top_models)
    assert 0 <= summary.residue_coverage_plddt_ultra <= summary.residue_coverage_plddt_high <= 1


def test_improvement_concentration_requires_overlap(full_run):
    top = full_run.inference_stage.top_models
    conc = improvement_concentration(top, top)
    assert conc.mean_delta == 0.0
    with pytest.raises(ValueError):
        improvement_concentration(top, {})


def test_stats_validation():
    with pytest.raises(ValueError):
        benchmark_row("x", {}, 0.0)
    with pytest.raises(ValueError):
        summarize_proteome({})


def test_highmem_routing_rescues_casp14(mini):
    """With routing on, casp14-style memory pressure goes to 2 TB nodes
    instead of failing — the paper's §3.3 high-memory node story."""
    from repro.msa import generate_features
    from repro.sequences import ProteinRecord, random_sequence, rng_for

    uni, _prot, suite, factory = mini
    # A designed 1000-residue target: over the casp14 (8-ensemble)
    # memory wall on a standard worker, under it on a high-memory one.
    rng = rng_for(99, "highmem-test")
    long_rec = ProteinRecord(
        record_id="highmem_target",
        encoded=random_sequence(1000, rng),
        family_id=None,
        divergence=1.0,
        annotated=False,
    )
    feats = {long_rec.record_id: generate_features(long_rec, suite)}
    routed = ProteomePipeline(inference_nodes=1, use_highmem_routing=True)
    bare = ProteomePipeline(inference_nodes=1, use_highmem_routing=False)
    r1 = routed.run_inference_stage(feats, factory, preset_name="casp14")
    r2 = bare.run_inference_stage(feats, factory, preset_name="casp14")
    assert not r1.oom_failures
    assert len(r2.oom_failures) == 5  # all five model tasks fail
