"""Pipeline stage tests on a miniature proteome."""

import pytest

from repro.core import ProteomePipeline, kingdom_bias_for
from repro.core.stats import (
    benchmark_row,
    improvement_concentration,
    summarize_proteome,
)
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.sequences import SequenceUniverse, synthetic_proteome


@pytest.fixture(scope="module")
def mini():
    uni = SequenceUniverse(13)
    prot = synthetic_proteome("D_vulgaris", universe=uni, seed=13, scale=0.006)
    suite = build_suite(uni, ["D_vulgaris"], seed=13, scale=0.006)
    factory = NativeFactory(uni)
    return uni, prot, suite, factory


@pytest.fixture(scope="module")
def pipeline():
    return ProteomePipeline(
        preset_name="genome",
        feature_nodes=4,
        inference_nodes=2,
        relax_nodes=1,
    )


@pytest.fixture(scope="module")
def full_run(mini, pipeline):
    uni, prot, suite, factory = mini
    return pipeline.run(prot, suite, factory)


def test_kingdom_bias():
    assert kingdom_bias_for("S_divinum") > 0
    assert kingdom_bias_for("D_vulgaris") == 0.0
    assert kingdom_bias_for("unknown") == 0.0


def test_feature_stage(full_run, mini):
    _, prot, _, _ = mini
    fs = full_run.feature_stage
    assert set(fs.features) == {r.record_id for r in prot}
    assert fs.node_hours > 0
    assert fs.simulation.walltime_seconds > 0
    assert fs.plan.n_replicas == 24


def test_inference_stage(full_run, mini):
    _, prot, _, _ = mini
    inf = full_run.inference_stage
    assert len(inf.top_models) == len(prot)
    for rid, preds in inf.predictions.items():
        assert 1 <= len(preds) <= 5
        top = inf.top_models[rid]
        assert top.ptms == max(p.ptms for p in preds)
    # five tasks per target in the simulation
    assert len(inf.simulation.records) == 5 * len(prot)


def test_relax_stage(full_run):
    rx = full_run.relax_stage
    assert set(rx.outcomes) == set(full_run.inference_stage.top_models)
    for outcome in rx.outcomes.values():
        assert outcome.violations_after.n_clashes == 0


def test_node_hours_additive(full_run):
    assert full_run.total_node_hours == pytest.approx(
        full_run.feature_stage.node_hours
        + full_run.inference_stage.node_hours
        + full_run.relax_stage.node_hours
    )


def test_run_requires_factory(mini, pipeline):
    _, prot, suite, _ = mini
    with pytest.raises(ValueError):
        pipeline.run(prot, suite, None)


def test_stats_row(full_run):
    inf = full_run.inference_stage
    row = benchmark_row("genome", inf.top_models, 10.0)
    assert row.count == len(inf.top_models)
    assert 0 <= row.frac_plddt_high <= 1
    assert 0 < row.mean_ptms <= 1


def test_summarize_proteome(full_run):
    summary = summarize_proteome(full_run.inference_stage.top_models)
    assert summary.n_targets == len(full_run.inference_stage.top_models)
    assert 0 <= summary.residue_coverage_plddt_ultra <= summary.residue_coverage_plddt_high <= 1


def test_improvement_concentration_requires_overlap(full_run):
    top = full_run.inference_stage.top_models
    conc = improvement_concentration(top, top)
    assert conc.mean_delta == 0.0
    with pytest.raises(ValueError):
        improvement_concentration(top, {})


def test_stats_validation():
    with pytest.raises(ValueError):
        benchmark_row("x", {}, 0.0)
    with pytest.raises(ValueError):
        summarize_proteome({})


def _long_target_features(mini):
    """One 1000-residue target: over the casp14 memory wall on a
    standard worker, under it on a high-memory one."""
    from repro.msa import generate_features
    from repro.sequences import ProteinRecord, random_sequence, rng_for

    uni, _prot, suite, factory = mini
    rng = rng_for(99, "highmem-test")
    long_rec = ProteinRecord(
        record_id="highmem_target",
        encoded=random_sequence(1000, rng),
        family_id=None,
        divergence=1.0,
        annotated=False,
    )
    return {long_rec.record_id: generate_features(long_rec, suite)}, factory


def test_oom_failure_accounting(mini):
    """OOM tasks are failed in the records, not logged as successes:
    ``n_failed`` matches ``oom_failures`` and the keys are lost."""
    feats, factory = _long_target_features(mini)
    bare = ProteomePipeline(inference_nodes=1, use_highmem_routing=False)
    run = bare.run_inference_stage(feats, factory, preset_name="casp14")
    assert len(run.oom_failures) == 5
    assert run.simulation.n_failed == 5
    failed = [r for r in run.simulation.records if not r.ok]
    assert {r.key for r in failed} == set(run.simulation.lost_keys())
    assert all("OutOfMemoryError" in r.error for r in failed)
    assert all(r.attempt == 1 for r in failed)


def test_retry_policy_recovers_oom_tasks(mini):
    """With retries, OOM tasks re-run on highmem workers: zero lost
    targets, failed-then-ok attempt pairs, no oom_failures."""
    from repro.dataflow import RetryPolicy

    feats, factory = _long_target_features(mini)
    pipeline = ProteomePipeline(
        inference_nodes=4, inference_highmem_nodes=1, use_highmem_routing=False
    )
    run = pipeline.run_inference_stage(
        feats,
        factory,
        preset_name="casp14",
        retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=10.0),
    )
    assert run.oom_failures == []
    assert run.simulation.lost_keys() == []
    assert len(run.top_models) == 1
    hm_ids = {w.worker_id for w in run.simulation.workers if w.highmem}
    recovered = 0
    for key in {r.key for r in run.simulation.records}:
        attempts = sorted(
            (r for r in run.simulation.records if r.key == key),
            key=lambda r: r.attempt,
        )
        assert attempts[-1].ok
        if len(attempts) > 1:
            recovered += 1
            assert not attempts[0].ok
            assert attempts[-1].worker_id in hm_ids
    assert recovered > 0


def test_feature_stage_respects_plan_concurrency(mini):
    """The replication plan's slot count caps concurrent searches even
    when it is below the node count (§3.2.1 contention bound)."""
    from repro.iosim.replication import ReplicationPlan

    _uni, prot, suite, _factory = mini
    plan = ReplicationPlan(
        dataset_bytes=420_000_000_000, n_replicas=2, jobs_per_replica=1
    )
    pipeline = ProteomePipeline(feature_nodes=8, replication_plan=plan)
    result = pipeline.run_feature_stage(prot, suite)
    worker_ids = {r.worker_id for r in result.simulation.records}
    assert len(worker_ids) <= plan.n_concurrent_jobs == 2


def test_highmem_routing_rescues_casp14(mini):
    """With routing on, casp14-style memory pressure goes to 2 TB nodes
    instead of failing — the paper's §3.3 high-memory node story."""
    from repro.msa import generate_features
    from repro.sequences import ProteinRecord, random_sequence, rng_for

    uni, _prot, suite, factory = mini
    # A designed 1000-residue target: over the casp14 (8-ensemble)
    # memory wall on a standard worker, under it on a high-memory one.
    rng = rng_for(99, "highmem-test")
    long_rec = ProteinRecord(
        record_id="highmem_target",
        encoded=random_sequence(1000, rng),
        family_id=None,
        divergence=1.0,
        annotated=False,
    )
    feats = {long_rec.record_id: generate_features(long_rec, suite)}
    routed = ProteomePipeline(inference_nodes=1, use_highmem_routing=True)
    bare = ProteomePipeline(inference_nodes=1, use_highmem_routing=False)
    r1 = routed.run_inference_stage(feats, factory, preset_name="casp14")
    r2 = bare.run_inference_stage(feats, factory, preset_name="casp14")
    assert not r1.oom_failures
    assert len(r2.oom_failures) == 5  # all five model tasks fail


def test_executor_stages_deterministic_across_worker_counts(mini):
    """Threaded stages must not change the science: every stochastic
    kernel draws from a per-(record, model) keyed stream, so 1 worker
    and 4 workers produce identical outputs in any completion order."""
    uni, prot, suite, factory = mini

    def run(workers):
        return ProteomePipeline(
            preset_name="genome",
            feature_nodes=4,
            inference_nodes=2,
            relax_nodes=1,
            compute_workers=workers,
        ).run(prot, suite, factory)

    serial = run(1)
    threaded = run(4)
    fs, ft = serial.feature_stage.features, threaded.feature_stage.features
    assert list(fs) == list(ft)  # proteome order, not completion order
    for rid, bundle in fs.items():
        assert ft[rid].msa_depth == bundle.msa_depth
        assert ft[rid].effective_depth == bundle.effective_depth
        assert ft[rid].n_templates == bundle.n_templates
    tops_s = serial.inference_stage.top_models
    tops_t = threaded.inference_stage.top_models
    assert set(tops_s) == set(tops_t)
    for rid, pred in tops_s.items():
        assert tops_t[rid].ptms == pred.ptms
        assert tops_t[rid].mean_plddt == pred.mean_plddt
    for rid, outcome in serial.relax_stage.outcomes.items():
        other = threaded.relax_stage.outcomes[rid]
        assert other.final_energy == outcome.final_energy
        assert other.total_steps == outcome.total_steps
        assert (
            other.violations_after.n_clashes
            == outcome.violations_after.n_clashes
        )


def test_stage_results_carry_execution_records(full_run, mini):
    """Each stage reports the ThreadedExecutor run that did its work."""
    _, prot, _, _ = mini
    record_ids = {r.record_id for r in prot}
    fs = full_run.feature_stage
    assert fs.execution is not None
    assert {r.key for r in fs.execution.records} == record_ids
    assert fs.execution.n_failed == 0
    inf = full_run.inference_stage
    assert inf.execution is not None
    assert len(inf.execution.records) == 5 * len(prot)
    rx = full_run.relax_stage
    assert rx.execution is not None
    assert {r.key for r in rx.execution.records} == set(
        full_run.inference_stage.top_models
    )


def test_feature_stage_cache_counters(mini):
    """A pipeline-attached FeatureCache turns repeat campaigns into
    pure cache hits, and the stage result reports the split."""
    from repro import FeatureCache

    _, prot, suite, _ = mini
    cache = FeatureCache()
    pipeline = ProteomePipeline(feature_nodes=2, feature_cache=cache)
    first = pipeline.run_feature_stage(prot, suite)
    assert first.cache_misses == len(prot)
    assert first.cache_hits == 0
    second = pipeline.run_feature_stage(prot, suite)
    assert second.cache_hits == len(prot)
    assert second.cache_misses == 0
    for rid, bundle in first.features.items():
        assert second.features[rid].msa_depth == bundle.msa_depth
    uncached = ProteomePipeline(feature_nodes=2).run_feature_stage(prot, suite)
    assert uncached.cache_hits == 0 and uncached.cache_misses == 0
