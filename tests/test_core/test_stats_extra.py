"""Extra statistics-layer tests: edge cases and invariants."""

import numpy as np
import pytest

from repro.core.stats import (
    ImprovementConcentration,
    benchmark_row,
    improvement_concentration,
    summarize_proteome,
)
from repro.fold.model import Prediction
from repro.sequences import encode
from repro.structure import Structure


def _prediction(rid, plddt_value, ptms, recycles=3, n=20):
    plddt = np.full(n, plddt_value, dtype=np.float64)
    structure = Structure(
        record_id=rid,
        encoded=encode("A" * n),
        ca=np.arange(n * 3, dtype=np.float64).reshape(n, 3),
        plddt=plddt,
    )
    return Prediction(
        structure=structure,
        ptms=ptms,
        mean_plddt=plddt_value,
        n_recycles=recycles,
        model_name="model_1",
        difficulty=0.3,
        true_tm=ptms,
    )


class TestBenchmarkRow:
    def test_thresholds_exact(self):
        top = {
            "a": _prediction("a", 80.0, 0.7),
            "b": _prediction("b", 60.0, 0.5),
        }
        row = benchmark_row("x", top, 10.0)
        assert row.frac_plddt_high == 0.5
        assert row.frac_ptms_high == 0.5
        assert row.mean_plddt == pytest.approx(70.0)
        assert row.count == 2

    def test_as_tuple_rounding(self):
        row = benchmark_row("x", {"a": _prediction("a", 77.77, 0.1234)}, 9.99)
        name, plddt, ptms, count, wall = row.as_tuple()
        assert (name, plddt, ptms, count, wall) == ("x", 77.8, 0.123, 1, 10.0)


class TestConcentration:
    def test_all_gains_equal(self):
        base = {k: _prediction(k, 70, 0.5) for k in "abcd"}
        up = {k: _prediction(k, 70, 0.56) for k in "abcd"}
        conc = improvement_concentration(base, up)
        assert conc.mean_delta == pytest.approx(0.06)
        assert conc.frac_targets_gain_005 == 1.0
        assert conc.share_of_gain_from_005 == pytest.approx(1.0)
        assert conc.frac_targets_gain_010 == 0.0

    def test_single_big_gainer(self):
        base = {k: _prediction(k, 70, 0.5) for k in "abcdefghij"}
        up = dict(base)
        up["a"] = _prediction("a", 70, 0.9, recycles=20)
        conc = improvement_concentration(base, up)
        assert conc.frac_targets_gain_010 == pytest.approx(0.1)
        assert conc.share_of_gain_from_010 == pytest.approx(1.0)
        assert conc.mean_recycles_of_big_gainers == 20

    def test_losses_not_counted_as_gain(self):
        base = {"a": _prediction("a", 70, 0.6), "b": _prediction("b", 70, 0.6)}
        up = {"a": _prediction("a", 70, 0.8), "b": _prediction("b", 70, 0.4)}
        conc = improvement_concentration(base, up)
        # share computed against positive gain only
        assert conc.share_of_gain_from_010 == pytest.approx(1.0)
        assert conc.mean_delta == pytest.approx(0.0)

    def test_is_frozen_dataclass(self):
        conc = ImprovementConcentration(0, 0, 0, 0, 0, 0)
        with pytest.raises(AttributeError):
            conc.mean_delta = 1.0


class TestProteomeSummary:
    def test_residue_vs_target_coverage(self):
        # One uniformly great target, one uniformly poor target.
        top = {
            "good": _prediction("good", 95.0, 0.9),
            "bad": _prediction("bad", 30.0, 0.2),
        }
        s = summarize_proteome(top)
        assert s.n_targets == 2
        assert s.frac_targets_plddt_high == 0.5
        assert s.residue_coverage_plddt_high == pytest.approx(0.5)
        assert s.residue_coverage_plddt_ultra == pytest.approx(0.5)
        assert s.frac_targets_ptms_high == 0.5

    def test_mean_recycles(self):
        top = {
            "a": _prediction("a", 80, 0.7, recycles=3),
            "b": _prediction("b", 80, 0.7, recycles=19),
        }
        assert summarize_proteome(top).mean_recycles == 11.0
