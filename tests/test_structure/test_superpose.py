"""Tests for Kabsch superposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structure import kabsch, rmsd, superpose


def _random_rotation(rng):
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - z * w), 2 * (x * z + y * w)],
            [2 * (x * y + z * w), 1 - 2 * (x * x + z * z), 2 * (y * z - x * w)],
            [2 * (x * z - y * w), 2 * (y * z + x * w), 1 - 2 * (x * x + y * y)],
        ]
    )


@given(seed=st.integers(0, 10_000), n=st.integers(4, 60))
@settings(max_examples=30, deadline=None)
def test_recovers_rigid_transform(seed, n):
    rng = np.random.default_rng(seed)
    ref = rng.normal(scale=10, size=(n, 3))
    rot = _random_rotation(rng)
    t = rng.normal(scale=25, size=3)
    mobile = ref @ rot.T + t
    sup = kabsch(mobile, ref)
    assert sup.rmsd < 1e-8
    np.testing.assert_allclose(sup.apply(mobile), ref, atol=1e-8)


def test_rotation_is_proper(rng):
    a = rng.normal(size=(10, 3))
    b = rng.normal(size=(10, 3))
    sup = kabsch(a, b)
    assert np.linalg.det(sup.rotation) == pytest.approx(1.0)
    np.testing.assert_allclose(
        sup.rotation @ sup.rotation.T, np.eye(3), atol=1e-10
    )


def test_no_reflection_for_mirrored_input(rng):
    ref = rng.normal(size=(20, 3))
    mirrored = ref * np.array([-1.0, 1.0, 1.0])
    sup = kabsch(mirrored, ref)
    # A proper rotation cannot undo a mirror: RMSD stays positive.
    assert sup.rmsd > 0.1
    assert np.linalg.det(sup.rotation) == pytest.approx(1.0)


def test_weighted_fit_prioritises_heavy_points(rng):
    ref = rng.normal(scale=5, size=(30, 3))
    mobile = ref.copy()
    mobile[0] += 100.0  # one wild outlier
    w = np.ones(30)
    w[0] = 1e-6
    sup = kabsch(mobile, ref, weights=w)
    fitted = sup.apply(mobile)
    # Non-outlier points should fit essentially exactly.
    assert np.abs(fitted[1:] - ref[1:]).max() < 1e-3


def test_weight_validation(rng):
    a = rng.normal(size=(5, 3))
    with pytest.raises(ValueError):
        kabsch(a, a, weights=np.zeros(5))
    with pytest.raises(ValueError):
        kabsch(a, a, weights=np.ones(4))
    with pytest.raises(ValueError):
        kabsch(a, a, weights=-np.ones(5))


def test_shape_validation():
    with pytest.raises(ValueError):
        kabsch(np.zeros((3, 2)), np.zeros((3, 2)))
    with pytest.raises(ValueError):
        kabsch(np.zeros((0, 3)), np.zeros((0, 3)))
    with pytest.raises(ValueError):
        kabsch(np.zeros((3, 3)), np.zeros((4, 3)))


def test_rmsd_with_and_without_superposition(rng):
    a = rng.normal(size=(25, 3))
    shifted = a + 5.0
    assert rmsd(shifted, a, superposition=True) == pytest.approx(0.0, abs=1e-9)
    assert rmsd(shifted, a, superposition=False) == pytest.approx(
        np.sqrt(75.0)
    )


def test_superpose_function(rng):
    a = rng.normal(size=(15, 3))
    moved = a @ _random_rotation(rng).T + 3.0
    np.testing.assert_allclose(superpose(moved, a), a, atol=1e-8)
