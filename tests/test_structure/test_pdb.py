"""PDB serialization tests."""

import numpy as np
import pytest

from repro.structure import parse_pdb, read_pdb, structure_to_pdb, write_pdb



@pytest.fixture()
def structure(factory, proteome):
    native = factory.native(proteome[0])
    plddt = np.linspace(30, 99, len(native))
    return native.with_plddt(plddt)


def test_roundtrip_text(structure):
    back = parse_pdb(structure_to_pdb(structure))
    assert back.record_id == structure.record_id
    assert back.sequence == structure.sequence
    np.testing.assert_allclose(back.ca, structure.ca, atol=1e-3)
    np.testing.assert_allclose(back.plddt, structure.plddt, atol=0.01)


def test_roundtrip_file(tmp_path, structure):
    path = tmp_path / "model.pdb"
    write_pdb(structure, path)
    back = read_pdb(path)
    assert back.sequence == structure.sequence


def test_plddt_in_bfactor_column(structure):
    text = structure_to_pdb(structure)
    atom_lines = [ln for ln in text.splitlines() if ln.startswith("ATOM")]
    b = float(atom_lines[0][60:66])
    assert b == pytest.approx(structure.plddt[0], abs=0.01)


def test_atom_records_format(structure):
    text = structure_to_pdb(structure)
    atom_lines = [ln for ln in text.splitlines() if ln.startswith("ATOM")]
    assert len(atom_lines) == len(structure)
    for line in atom_lines[:5]:
        assert line[12:16].strip() == "CA"
        assert len(line.rstrip("\n")) >= 66


def test_parse_ignores_non_ca(structure):
    text = structure_to_pdb(structure)
    # Inject an N atom line; parser must skip it.
    lines = text.splitlines()
    fake = lines[1].replace(" CA ", " N  ")
    text2 = "\n".join([lines[0], fake] + lines[1:])
    back = parse_pdb(text2)
    assert len(back) == len(structure)


def test_parse_rejects_empty():
    with pytest.raises(ValueError):
        parse_pdb("REMARK nothing here\nEND\n")


def test_parse_rejects_nonstandard_residue(structure):
    text = structure_to_pdb(structure).replace("ALA", "XXX", 1)
    if "XXX" in text:
        with pytest.raises(ValueError):
            parse_pdb(text)


def test_no_plddt_means_none(factory, proteome):
    native = factory.native(proteome[1])
    back = parse_pdb(structure_to_pdb(native))
    assert back.plddt is None
