"""SPECS score and structural alignment tests."""

import numpy as np
import pytest

from repro.fold import NativeFactory, smooth_chain_noise
from repro.sequences import SequenceUniverse

from repro.structure import (
    align_structures,
    nw_align_matrix,
    pseudo_cb,
    specs_score,
    tm_score,
)


@pytest.fixture(scope="module")
def factory9():
    return NativeFactory(SequenceUniverse(21))


@pytest.fixture(scope="module")
def fold200(factory9):
    return factory9.family_fold(31, 200)


class TestSpecs:
    def test_identity_near_one(self, fold200):
        score = specs_score(fold200, fold200)
        assert score > 0.97

    def test_monotone_in_noise(self, fold200, rng):
        s = [
            specs_score(fold200 + rng.normal(scale=sig, size=fold200.shape), fold200)
            for sig in (0.3, 2.0, 8.0)
        ]
        assert s[0] > s[1] > s[2]

    def test_sidechain_sensitivity(self, fold200, rng):
        """Backbone fixed, side chains perturbed: SPECS drops, not TM."""
        good_cb = pseudo_cb(fold200)
        bad_cb = good_cb + rng.normal(scale=2.0, size=good_cb.shape)
        s_good = specs_score(fold200, fold200, model_cb=good_cb, native_cb=good_cb)
        s_bad = specs_score(fold200, fold200, model_cb=bad_cb, native_cb=good_cb)
        assert s_bad < s_good - 0.05
        assert tm_score(fold200, fold200) == pytest.approx(1.0, abs=1e-6)

    def test_bounds(self, fold200, rng):
        wild = fold200 + rng.normal(scale=30, size=fold200.shape)
        assert 0.0 <= specs_score(wild, fold200) <= 1.0

    def test_shape_validation(self, fold200):
        with pytest.raises(ValueError):
            specs_score(fold200[:10], fold200)


class TestNWMatrix:
    def test_diagonal_recovered(self):
        score = np.eye(8)
        pairs = nw_align_matrix(score, gap_penalty=-0.5)
        np.testing.assert_array_equal(pairs[:, 0], pairs[:, 1])
        assert pairs.shape[0] == 8

    def test_gap_placement(self):
        # Query matches target positions 0..4 skipping target position 2.
        score = np.zeros((4, 5))
        for q, t in [(0, 0), (1, 1), (2, 3), (3, 4)]:
            score[q, t] = 5.0
        pairs = nw_align_matrix(score, gap_penalty=-1.0)
        assert {(0, 0), (1, 1), (2, 3), (3, 4)} <= set(map(tuple, pairs))

    def test_positive_gap_rejected(self):
        with pytest.raises(ValueError):
            nw_align_matrix(np.eye(3), gap_penalty=0.5)


class TestAlignStructures:
    def test_self_alignment_perfect(self, fold200):
        res = align_structures(fold200, fold200)
        assert res.tm_score > 0.95
        assert res.n_aligned >= 195

    def test_fragment_alignment(self, fold200):
        """A fragment must align onto its source region."""
        fragment = fold200[40:150]
        res = align_structures(fragment, fold200)
        assert res.tm_score > 0.8
        # recovered correspondence maps i -> i + 40 for the core
        offsets = res.pairs[:, 1] - res.pairs[:, 0]
        assert np.median(offsets) == pytest.approx(40, abs=3)

    def test_homologous_folds_align(self, factory9, rng):
        base = factory9.family_fold(55, 160)
        perturbed = base + smooth_chain_noise(160, rng, sigma=1.5)
        res = align_structures(perturbed, base)
        assert res.tm_score > 0.6

    def test_unrelated_folds_low(self, factory9):
        a = factory9.family_fold(60, 150)
        b = factory9.family_fold(61, 170)
        res = align_structures(a, b)
        assert res.tm_score < 0.45

    def test_sequence_identity_computed(self, factory9, universe):
        fold = factory9.family_fold(70, 100)
        seq = np.arange(100, dtype=np.uint8) % 20
        res = align_structures(fold, fold, query_seq=seq, target_seq=seq)
        assert res.sequence_identity == pytest.approx(1.0)

    def test_too_short_rejected(self, fold200):
        with pytest.raises(ValueError):
            align_structures(fold200[:2], fold200)
