"""Structure model tests."""

import numpy as np
import pytest

from repro.sequences import encode
from repro.structure import Structure, pairwise_distances, pseudo_cb


def _structure(n=10, rid="s1"):
    coords = np.zeros((n, 3))
    coords[:, 0] = np.arange(n) * 3.8
    return Structure(record_id=rid, encoded=np.zeros(n, dtype=np.uint8), ca=coords)


class TestConstruction:
    def test_basic(self):
        s = _structure()
        assert len(s) == 10
        assert s.sequence == "A" * 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Structure(
                record_id="x", encoded=np.zeros(5, dtype=np.uint8), ca=np.zeros((4, 3))
            )

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Structure(
                record_id="x", encoded=np.zeros(4, dtype=np.uint8), ca=np.zeros((4, 2))
            )

    def test_plddt_length_checked(self):
        with pytest.raises(ValueError):
            Structure(
                record_id="x",
                encoded=np.zeros(4, dtype=np.uint8),
                ca=np.zeros((4, 3)),
                plddt=np.zeros(3),
            )


class TestDerived:
    def test_heavy_atoms_and_hydrogens(self):
        s = Structure(record_id="x", encoded=encode("GGG"), ca=np.zeros((3, 3)) + np.arange(3)[:, None])
        assert s.n_heavy_atoms == 3 * 4 + 1  # glycine backbone + OXT
        assert s.n_hydrogens > 0

    def test_mean_plddt_requires_plddt(self):
        with pytest.raises(ValueError):
            _structure().mean_plddt()

    def test_radius_of_gyration_line(self):
        s = _structure(100)
        assert s.radius_of_gyration() > 50.0

    def test_transformed(self):
        s = _structure()
        rot = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        t = s.transformed(rot, np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.ca, s.ca @ rot.T + [1, 2, 3])

    def test_with_coordinates_keeps_metadata(self):
        s = _structure().with_plddt(np.full(10, 50.0))
        t = s.with_coordinates(s.ca + 1.0, model_name="relaxed")
        assert t.model_name == "relaxed"
        np.testing.assert_array_equal(t.plddt, s.plddt)


class TestGeometryHelpers:
    def test_pairwise_distances_symmetric(self, rng):
        x = rng.normal(size=(20, 3))
        d = pairwise_distances(x)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_pairwise_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((5, 2)))

    def test_pseudo_cb_distance(self, factory, proteome):
        native = factory.native(proteome[0])
        cb = pseudo_cb(native.ca)
        d = np.linalg.norm(cb - native.ca, axis=1)
        np.testing.assert_allclose(d, 1.53, atol=1e-9)

    def test_pseudo_cb_straight_chain_fallback(self):
        s = _structure(20)
        cb = pseudo_cb(s.ca)
        assert np.isfinite(cb).all()
        d = np.linalg.norm(cb - s.ca, axis=1)
        np.testing.assert_allclose(d, 1.53, atol=1e-9)

    def test_pseudo_cb_tiny_inputs(self):
        one = np.zeros((1, 3))
        assert pseudo_cb(one).shape == (1, 3)
        assert pseudo_cb(np.zeros((0, 3))).shape == (0, 3)
