"""Fold-library search tests (the pdb70 stand-in)."""

import numpy as np
import pytest

from repro.sequences.proteome import species_family_base
from repro.structure import FoldLibrary, build_fold_library


@pytest.fixture(scope="module")
def fold_library(universe, proteome):
    base = species_family_base("D_vulgaris")
    pool = max(1, int(len(proteome) / 0.98 * 0.6))
    return build_fold_library(universe, list(range(base, base + pool)), seed=9)


def test_entries_have_structures_and_annotations(fold_library):
    assert len(fold_library) > 0
    for entry in fold_library.entries:
        assert len(entry.structure) > 0
        assert entry.annotation.startswith("family_")


def test_deterministic(universe, proteome):
    base = species_family_base("D_vulgaris")
    a = build_fold_library(universe, [base, base + 1, base + 2], seed=9)
    b = build_fold_library(universe, [base, base + 1, base + 2], seed=9)
    assert [e.entry_id for e in a.entries] == [e.entry_id for e in b.entries]


def test_search_finds_own_family(fold_library, factory, proteome):
    """A *native* structure of a deposited family must find its rep."""
    deposited = {e.family_id for e in fold_library.entries}
    rec = next(
        (
            r
            for r in proteome
            if r.family_id in deposited and r.divergence < 0.3 and r.branch == 0
        ),
        None,
    )
    if rec is None:
        pytest.skip("no low-divergence deposited member in fixture")
    native = factory.native(rec)
    hits = fold_library.search(native, max_candidates=20)
    assert hits
    assert hits[0].tm_score > 0.5
    assert hits[0].entry.family_id == rec.family_id


def test_hits_sorted(fold_library, factory, proteome):
    native = factory.native(proteome[0])
    hits = fold_library.search(native, max_candidates=10, full_align_top=3)
    scores = [h.tm_score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_length_window_prefilter(fold_library, factory, proteome):
    short = min(proteome, key=lambda r: r.length)
    native = factory.native(short)
    hits = fold_library.search(native, length_window=0.1)
    for h in hits:
        assert abs(len(h.entry.structure) - len(native)) <= 0.1 * max(
            len(h.entry.structure), len(native)
        )


def test_empty_library():
    lib = FoldLibrary([])
    assert len(lib) == 0
    # best_hit on an empty library is None, not an exception.
    from repro.sequences import encode
    from repro.structure import Structure

    q = Structure(
        record_id="q", encoded=encode("A" * 30), ca=np.random.default_rng(0).normal(size=(30, 3)) * 10
    )
    assert lib.best_hit(q) is None
