"""Tests for TM-score and GDT-TS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fold import NativeFactory
from repro.sequences import SequenceUniverse
from repro.structure import gdt_ts, tm_d0, tm_score


@pytest.fixture(scope="module")
def fold300():
    return NativeFactory(SequenceUniverse(5)).family_fold(999, 300)


class TestD0:
    def test_reference_values(self):
        # Published d0 anchors.
        assert tm_d0(100) == pytest.approx(1.24 * 85 ** (1 / 3) - 1.8, rel=1e-9)
        assert tm_d0(15) == 0.5
        assert tm_d0(5) == 0.5

    def test_monotone(self):
        values = [tm_d0(n) for n in range(16, 2000, 50)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tm_d0(0)


class TestTMScore:
    def test_identity_is_one(self, fold300):
        assert tm_score(fold300, fold300) == pytest.approx(1.0, abs=1e-6)

    def test_rigid_motion_invariant(self, fold300, rng):
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1],
            ]
        )
        moved = fold300 @ rot.T + np.array([5.0, -3.0, 11.0])
        assert tm_score(moved, fold300) == pytest.approx(1.0, abs=1e-4)

    def test_bounded(self, fold300, rng):
        noisy = fold300 + rng.normal(scale=15.0, size=fold300.shape)
        score = tm_score(noisy, fold300)
        assert 0.0 < score < 1.0

    def test_monotone_in_noise(self, fold300, rng):
        scores = []
        for sigma in (0.5, 2.0, 8.0, 25.0):
            noisy = fold300 + rng.normal(scale=sigma, size=fold300.shape)
            scores.append(tm_score(noisy, fold300))
        assert scores[0] > scores[1] > scores[2] > scores[3]

    def test_unrelated_folds_score_low(self):
        factory = NativeFactory(SequenceUniverse(5))
        a = factory.family_fold(1, 150)
        b = factory.family_fold(2, 150)
        assert tm_score(a, b) < 0.45

    def test_domain_anchor_found(self, fold300, rng):
        # Half the chain perfect, half garbage: score should be at least
        # the perfect half's contribution (~0.5), which requires the
        # seed search to anchor on the good half.
        model = fold300.copy()
        model[150:] += rng.normal(scale=40.0, size=(150, 3))
        score = tm_score(model, fold300)
        assert score > 0.45

    def test_norm_length(self, fold300):
        # Normalising by a longer target reduces the score proportionally.
        full = tm_score(fold300, fold300)
        halfnorm = tm_score(fold300, fold300, norm_length=600)
        assert halfnorm == pytest.approx(full / 2.0, rel=1e-6)

    def test_shape_mismatch_raises(self, fold300):
        with pytest.raises(ValueError):
            tm_score(fold300[:10], fold300)

    def test_empty_raises(self):
        empty = np.zeros((0, 3))
        with pytest.raises(ValueError):
            tm_score(empty, empty)


class TestGDT:
    def test_identity(self, fold300):
        assert gdt_ts(fold300, fold300) == pytest.approx(1.0)

    def test_monotone_in_noise(self, fold300, rng):
        s1 = gdt_ts(fold300 + rng.normal(scale=0.5, size=fold300.shape), fold300)
        s2 = gdt_ts(fold300 + rng.normal(scale=6.0, size=fold300.shape), fold300)
        assert s1 > s2

    def test_bounded(self, fold300, rng):
        noisy = fold300 + rng.normal(scale=30.0, size=fold300.shape)
        assert 0.0 <= gdt_ts(noisy, fold300) <= 1.0


@given(sigma=st.floats(0.1, 20.0), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_tm_score_in_unit_interval(sigma, seed):
    factory = NativeFactory(SequenceUniverse(5))
    fold = factory.family_fold(999, 80)
    rng = np.random.default_rng(seed)
    noisy = fold + rng.normal(scale=sigma, size=fold.shape)
    assert 0.0 < tm_score(noisy, fold) <= 1.0
