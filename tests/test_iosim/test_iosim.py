"""I/O contention and replication model tests."""

import pytest

from repro.constants import FULL_DATASET_BYTES, REDUCED_DATASET_BYTES
from repro.iosim import (
    FilesystemSpec,
    ReplicationPlan,
    contention_factor,
    dcp_copy_seconds,
    paper_plan,
)


class TestContention:
    def test_uncontended_at_paper_layout(self):
        # 24 replicas x 4 jobs: the design point — no slowdown.
        assert contention_factor(96, 24) == pytest.approx(1.0)

    def test_fewer_replicas_slower(self):
        few = contention_factor(96, 4)
        many = contention_factor(96, 24)
        assert few > many

    def test_metadata_wall_at_high_job_counts(self):
        # Even with plenty of replicas, enough jobs saturate metadata.
        assert contention_factor(1000, 250) > 1.5

    def test_monotone_in_jobs(self):
        factors = [contention_factor(j, 24) for j in (24, 96, 240, 960)]
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            contention_factor(0, 24)
        with pytest.raises(ValueError):
            contention_factor(10, 0)
        with pytest.raises(ValueError):
            FilesystemSpec(metadata_ops_per_second=0)


class TestReplication:
    def test_paper_plan_layout(self):
        plan = paper_plan(REDUCED_DATASET_BYTES)
        assert plan.n_replicas == 24
        assert plan.jobs_per_replica == 4
        assert plan.n_concurrent_jobs == 96
        assert plan.contention() == pytest.approx(1.0)

    def test_storage_footprint(self):
        plan = paper_plan(REDUCED_DATASET_BYTES)
        assert plan.storage_bytes == 24 * REDUCED_DATASET_BYTES
        # Full-dataset replication is 5x the storage — the reason the
        # paper moved to the reduced dataset.
        full = paper_plan(FULL_DATASET_BYTES)
        assert full.storage_bytes == 5 * plan.storage_bytes

    def test_copy_time_scales(self):
        slow = dcp_copy_seconds(REDUCED_DATASET_BYTES, 1)
        fast = dcp_copy_seconds(REDUCED_DATASET_BYTES, 16)
        assert slow > fast
        # Aggregate bandwidth cap: more movers eventually stop helping.
        assert dcp_copy_seconds(REDUCED_DATASET_BYTES, 64) == pytest.approx(
            dcp_copy_seconds(REDUCED_DATASET_BYTES, 32)
        )

    def test_replication_time_full_vs_reduced(self):
        reduced = paper_plan(REDUCED_DATASET_BYTES).replication_seconds()
        full = paper_plan(FULL_DATASET_BYTES).replication_seconds()
        assert full == pytest.approx(5 * reduced)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicationPlan(1, 0, 4)
        with pytest.raises(ValueError):
            dcp_copy_seconds(100, 0)
