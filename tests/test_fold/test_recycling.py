"""Recycle controller and distogram convergence tests."""

import numpy as np
import pytest

from repro.fold import (
    NativeFactory,
    RecycleController,
    distogram_change,
    distogram_signature,
)
from repro.sequences import SequenceUniverse


@pytest.fixture(scope="module")
def fold():
    return NativeFactory(SequenceUniverse(9)).family_fold(77, 120)


def test_signature_shape_small(fold):
    sig = distogram_signature(fold)
    assert sig.shape == (120, 120)
    assert np.allclose(sig, sig.T)
    assert np.allclose(np.diag(sig), 0.0)


def test_signature_subsamples_long_chains():
    factory = NativeFactory(SequenceUniverse(9))
    big = factory.family_fold(78, 900)
    sig = distogram_signature(big)
    assert sig.shape[0] <= 450


@pytest.mark.parametrize("length", [5, 120, 399, 400, 401, 900])
def test_gemm_matches_reference_across_subsample_threshold(length):
    """The GEMM distogram equals the broadcast reference for lengths on
    both sides of the 400-row subsample threshold."""
    from repro.fold.recycling import distogram_signature_reference

    factory = NativeFactory(SequenceUniverse(9))
    ca = factory.family_fold(1000 + length, length)
    fast = distogram_signature(ca)
    ref = distogram_signature_reference(ca)
    assert fast.shape == ref.shape
    np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-6)


def test_gemm_reuses_caller_buffer(fold):
    sig = distogram_signature(fold)
    out = np.empty_like(sig)
    again = distogram_signature(fold, out=out)
    assert again is out
    np.testing.assert_array_equal(again, sig)
    # Mismatched buffers are ignored, not an error.
    wrong = np.empty((3, 3))
    fresh = distogram_signature(fold, out=wrong)
    assert fresh is not wrong
    np.testing.assert_array_equal(fresh, sig)


def test_change_zero_for_identical(fold):
    sig = distogram_signature(fold)
    assert distogram_change(sig, sig) == 0.0


def test_change_positive_for_perturbation(fold):
    rng = np.random.default_rng(0)
    moved = fold + rng.normal(scale=1.0, size=fold.shape)
    a, b = distogram_signature(fold), distogram_signature(moved)
    assert distogram_change(a, b) > 0.1


def test_change_shape_mismatch_raises(fold):
    with pytest.raises(ValueError):
        distogram_change(np.zeros((3, 3)), np.zeros((4, 4)))


class TestController:
    def test_fixed_mode_runs_to_cap(self, fold):
        ctrl = RecycleController(tolerance=None, cap=4)
        rng = np.random.default_rng(1)
        stops = []
        for _ in range(4):
            stops.append(ctrl.update(fold + rng.normal(scale=2, size=fold.shape)))
        assert stops == [False, False, False, True]
        assert ctrl.n_recycles == 4

    def test_adaptive_stops_on_convergence(self, fold):
        ctrl = RecycleController(tolerance=0.5, cap=20)
        # Identical coordinates each pass -> change 0 after pass 2.
        assert ctrl.update(fold) is False
        assert ctrl.update(fold) is True
        assert ctrl.last_change == 0.0

    def test_adaptive_keeps_going_while_changing(self, fold):
        ctrl = RecycleController(tolerance=0.01, cap=20)
        rng = np.random.default_rng(2)
        n = 0
        while not ctrl.update(fold + rng.normal(scale=3, size=fold.shape)):
            n += 1
            if n > 25:
                break
        # big fresh noise every pass: should run to the cap
        assert ctrl.n_recycles == 20

    def test_never_stops_before_two_passes(self, fold):
        ctrl = RecycleController(tolerance=1e9, cap=20)
        assert ctrl.update(fold) is False
        assert ctrl.update(fold) is True
