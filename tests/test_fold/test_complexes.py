"""Complex-prediction (AF2Complex extension) tests."""

import numpy as np
import pytest

from repro.fold import (
    ComplexPredictor,
    NativeFactory,
    interface_contacts,
    pair_interacts,
)
from repro.msa import generate_features


@pytest.fixture(scope="module")
def complex_setup(universe, proteome, suite):
    factory = NativeFactory(universe)
    predictor = ComplexPredictor(factory)
    recs = [r for r in proteome if r.family_id is not None and r.length < 350][:10]
    feats = {r.record_id: generate_features(r, suite) for r in recs}
    return predictor, recs, feats


class TestInteractome:
    def test_symmetric(self, proteome):
        recs = [r for r in proteome if r.family_id is not None][:6]
        for a in recs:
            for b in recs:
                assert pair_interacts(a, b) == pair_interacts(b, a)

    def test_orphans_never_interact(self, proteome):
        orphan = next(r for r in proteome if r.family_id is None)
        other = next(r for r in proteome if r.family_id is not None)
        assert not pair_interacts(orphan, other)

    def test_deterministic(self, proteome):
        recs = [r for r in proteome if r.family_id is not None][:4]
        flags = [pair_interacts(recs[0], r) for r in recs[1:]]
        assert flags == [pair_interacts(recs[0], r) for r in recs[1:]]


class TestInterfaceContacts:
    def test_touching_chains(self):
        a = np.zeros((10, 3))
        a[:, 0] = np.arange(10) * 3.8
        b = a + np.array([0.0, 5.0, 0.0])
        assert interface_contacts(a, b) > 0

    def test_distant_chains(self):
        a = np.zeros((10, 3))
        b = a + 500.0
        assert interface_contacts(a, b) == 0

    def test_empty(self):
        assert interface_contacts(np.zeros((0, 3)), np.zeros((5, 3))) == 0


class TestComplexPredictor:
    def test_native_pose_has_interface(self, complex_setup):
        predictor, recs, _ = complex_setup
        pair = None
        for i in range(len(recs)):
            for j in range(i + 1, len(recs)):
                if pair_interacts(recs[i], recs[j]):
                    pair = (recs[i], recs[j])
                    break
            if pair:
                break
        if pair is None:
            pytest.skip("no interacting pair in fixture sample")
        ca_a, ca_b = predictor.native_pose(*pair)
        assert interface_contacts(ca_a, ca_b) > 0
        # Steric: docked chains must not interpenetrate badly.
        from scipy.spatial import cKDTree

        d_min = float(cKDTree(ca_b).query(ca_a, k=1)[0].min())
        assert d_min > 3.0

    def test_prediction_shape(self, complex_setup):
        predictor, recs, feats = complex_setup
        a, b = recs[0], recs[1]
        cp = predictor.predict(feats[a.record_id], feats[b.record_id])
        assert len(cp.structure) == a.length + b.length
        assert cp.chain_break == a.length
        assert cp.chain_a.shape == (a.length, 3)
        assert cp.chain_b.shape == (b.length, 3)
        assert 0.0 <= cp.interface_score <= 1.0

    def test_deterministic(self, complex_setup):
        predictor, recs, feats = complex_setup
        a, b = recs[0], recs[2]
        c1 = predictor.predict(feats[a.record_id], feats[b.record_id])
        c2 = predictor.predict(feats[a.record_id], feats[b.record_id])
        assert c1.interface_score == c2.interface_score
        np.testing.assert_array_equal(c1.structure.ca, c2.structure.ca)

    def test_discrimination(self, complex_setup):
        """True pairs must score above non-pairs — the interactome-screen
        property AF2Complex relies on."""
        predictor, recs, feats = complex_setup
        true_scores, false_scores = [], []
        for i in range(len(recs)):
            for j in range(i + 1, len(recs)):
                cp = predictor.predict(
                    feats[recs[i].record_id], feats[recs[j].record_id]
                )
                (true_scores if cp.truly_interacting else false_scores).append(
                    cp.interface_score
                )
        assert false_scores, "fixture produced no non-interacting pairs"
        assert np.mean(false_scores) < 0.15
        if true_scores:
            assert np.mean(true_scores) > np.mean(false_scores) + 0.15
