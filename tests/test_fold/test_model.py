"""Surrogate predictor tests: the paper's §3.2.2 mechanisms in miniature."""

import numpy as np
import pytest

from repro.fold import (
    NativeFactory,
    OutOfMemoryError,
    PredictionConfig,
    SurrogateFoldModel,
    adaptive_recycle_cap,
    default_model_bank,
    inference_memory_bytes,
    standard_worker_memory_bytes,
)
from repro.msa import generate_features
from repro.structure import tm_score


@pytest.fixture(scope="module")
def features(universe, proteome, suite):
    return [generate_features(r, suite) for r in list(proteome)[:12]]


@pytest.fixture(scope="module")
def bank(universe):
    return default_model_bank(NativeFactory(universe))


FIXED3 = PredictionConfig(max_recycles=3)
GENOME = PredictionConfig(recycle_tolerance=0.5, max_recycles=20, adaptive_cap=True)
SUPER = PredictionConfig(recycle_tolerance=0.1, max_recycles=20, adaptive_cap=True)


class TestDeterminism:
    def test_same_inputs_same_prediction(self, features, bank):
        a = bank[0].predict(features[0], FIXED3)
        b = bank[0].predict(features[0], FIXED3)
        np.testing.assert_array_equal(a.structure.ca, b.structure.ca)
        assert a.ptms == b.ptms

    def test_heads_differ(self, features, bank):
        preds = [m.predict(features[0], FIXED3) for m in bank]
        coords = [p.structure.ca for p in preds]
        assert not np.allclose(coords[0], coords[1])


class TestRecycling:
    def test_fixed_preset_runs_exact_count(self, features, bank):
        for f in features[:5]:
            p = bank[2].predict(f, FIXED3)
            assert p.n_recycles == 3

    def test_adaptive_never_exceeds_cap(self, features, bank):
        for f in features:
            p = bank[2].predict(f, GENOME)
            assert p.n_recycles <= adaptive_recycle_cap(f.length)

    def test_super_recycles_at_least_genome(self, features, bank):
        g = np.mean([bank[1].predict(f, GENOME).n_recycles for f in features])
        s = np.mean([bank[1].predict(f, SUPER).n_recycles for f in features])
        assert s >= g

    def test_hard_targets_recycle_longer(self, features, bank):
        preds = [bank[3].predict(f, SUPER) for f in features]
        hard = [p.n_recycles for p in preds if p.difficulty > 0.6]
        easy = [p.n_recycles for p in preds if p.difficulty < 0.2]
        if hard and easy:
            assert np.mean(hard) > np.mean(easy)

    def test_recycle_cap_taper(self):
        assert adaptive_recycle_cap(400) == 20
        assert adaptive_recycle_cap(500) == 20
        assert adaptive_recycle_cap(2500) == 6
        assert 6 < adaptive_recycle_cap(1500) < 20


class TestQuality:
    def test_quality_tracks_difficulty(self, features, bank, universe):
        preds = [bank[0].predict(f, FIXED3) for f in features]
        hard = [p for p in preds if p.difficulty > 0.6]
        easy = [p for p in preds if p.difficulty < 0.2]
        if hard and easy:
            assert np.mean([p.true_tm for p in easy]) > np.mean(
                [p.true_tm for p in hard]
            )

    def test_plddt_in_range(self, features, bank):
        p = bank[0].predict(features[0], FIXED3)
        plddt = np.asarray(p.structure.plddt)
        assert plddt.min() >= 0 and plddt.max() <= 100
        assert p.mean_plddt == pytest.approx(float(plddt.mean()))

    def test_true_tm_matches_structure(self, features, bank, universe):
        factory = bank[0].factory
        f = features[1]
        p = bank[0].predict(f, FIXED3)
        native = factory.native(f.record)
        assert p.true_tm == pytest.approx(
            tm_score(p.structure.ca, native.ca), abs=1e-9
        )

    def test_more_recycles_never_hurt_much(self, features, bank):
        for f in features[:6]:
            short = bank[4].predict(f, PredictionConfig(max_recycles=2))
            long = bank[4].predict(f, PredictionConfig(max_recycles=20))
            assert long.true_tm >= short.true_tm - 0.05


class TestMemory:
    def test_memory_monotone_in_length_and_ensembles(self):
        assert inference_memory_bytes(500) < inference_memory_bytes(1000)
        assert inference_memory_bytes(500, 1) < inference_memory_bytes(500, 8)

    def test_casp14_oom_wall_between_800_and_880(self):
        # The Table 1 long tail is designed around this wall: 8 of its
        # 10 sequences (880..1266) exceed it, reproducing the paper's
        # eight casp14 OOM losses.
        budget = standard_worker_memory_bytes()
        assert inference_memory_bytes(800, 8) < budget
        assert inference_memory_bytes(880, 8) > budget

    def test_single_ensemble_fits_past_2000(self):
        budget = standard_worker_memory_bytes()
        assert inference_memory_bytes(2000, 1) < budget

    def test_oom_raises(self, features, bank):
        f = features[0]
        cfg = PredictionConfig(memory_budget_bytes=1)
        with pytest.raises(OutOfMemoryError) as exc:
            bank[0].predict(f, cfg)
        assert f.record_id in str(exc.value)

    def test_model_index_validation(self, universe):
        with pytest.raises(ValueError):
            SurrogateFoldModel(NativeFactory(universe), 7)


class TestTemplates:
    def test_first_two_heads_use_templates(self, bank):
        assert [m.uses_templates for m in bank] == [
            True, True, False, False, False,
        ]

    def test_template_lowers_difficulty(self, features, bank):
        templated = [f for f in features if f.has_templates]
        if not templated:
            pytest.skip("no templated targets in fixture sample")
        f = templated[0]
        with_t = bank[0].predict(f, FIXED3)  # template head
        without_t = bank[2].predict(f, FIXED3)  # sequence-only head
        assert with_t.difficulty <= without_t.difficulty + 1e-9
