"""Native factory tests: family folds, member divergence, determinism."""

import numpy as np
import pytest

from repro.fold import NativeFactory, smooth_chain_noise
from repro.structure import tm_score


class TestSmoothNoise:
    def test_rms_matches_sigma(self, rng):
        noise = smooth_chain_noise(500, rng, sigma=2.0)
        rms = np.sqrt((noise**2).sum(axis=1).mean())
        assert rms == pytest.approx(2.0, rel=1e-9)

    def test_spatial_correlation(self, rng):
        noise = smooth_chain_noise(1000, rng, sigma=1.0, window=15)
        # Neighbouring displacements should be strongly correlated.
        corr = np.corrcoef(noise[:-1, 0], noise[1:, 0])[0, 1]
        assert corr > 0.7

    def test_empty(self, rng):
        assert smooth_chain_noise(0, rng, sigma=1.0).shape == (0, 3)


class TestNativeFactory:
    def test_native_deterministic_across_instances(self, universe, proteome):
        rec = proteome[0]
        a = NativeFactory(universe).native(rec)
        b = NativeFactory(universe).native(rec)
        np.testing.assert_array_equal(a.ca, b.ca)

    def test_native_cached(self, factory, proteome):
        rec = proteome[0]
        assert factory.native(rec) is factory.native(rec)

    def test_native_matches_record(self, factory, proteome):
        rec = proteome[1]
        native = factory.native(rec)
        assert len(native) == rec.length
        assert native.record_id == rec.record_id
        assert native.model_name == "native"

    def test_family_members_fold_alike(self, universe):
        """Same family, low divergence -> high structural similarity."""
        from repro.sequences import ProteinRecord

        factory = NativeFactory(universe)
        fam = universe.family(123)
        recs = [
            ProteinRecord(
                record_id=f"m{i}",
                encoded=universe.member(fam, 0.08, member_seed=i, indel_rate=0.0),
                family_id=fam.family_id,
                divergence=0.08,
            )
            for i in range(2)
        ]
        a, b = factory.native(recs[0]), factory.native(recs[1])
        assert tm_score(a.ca, b.ca) > 0.7

    def test_divergence_reduces_similarity(self, universe):
        from repro.sequences import ProteinRecord

        factory = NativeFactory(universe)
        fam = universe.family(124)
        base = factory.family_fold(fam.fold_seed, fam.length)

        def member_native(div, i):
            rec = ProteinRecord(
                record_id=f"d{div}_{i}",
                encoded=universe.member(fam, div, member_seed=i, indel_rate=0.0),
                family_id=fam.family_id,
                divergence=div,
            )
            return factory.native(rec)

        close = tm_score(member_native(0.05, 0).ca, base)
        far = tm_score(member_native(0.5, 1).ca, base)
        assert close > far

    def test_orphans_fold_uniquely(self, universe, proteome):
        factory = NativeFactory(universe)
        orphans = [r for r in proteome if r.family_id is None][:2]
        if len(orphans) < 2:
            pytest.skip("fixture has < 2 orphans")
        a, b = factory.native(orphans[0]), factory.native(orphans[1])
        n = min(len(a), len(b))
        assert tm_score(a.ca[:n], b.ca[:n]) < 0.5

    def test_ss_labels_available(self, factory, proteome):
        rec = proteome[2]
        labels = factory.native_ss_labels(rec)
        assert labels.size == rec.length
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_clear_cache(self, universe, proteome):
        factory = NativeFactory(universe)
        factory.native(proteome[0])
        factory.clear_cache()
        assert factory._native_cache == {}
