"""Geometry tests: chain building, compaction, overlap resolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fold.geometry import (
    CA_BOND,
    build_ca_chain,
    compact_chain,
    resolve_overlaps,
    ss_segments,
    target_radius_of_gyration,
    torsions_for_segments,
)
from repro.sequences import rng_for
from repro.structure import pairwise_distances


class TestSegments:
    def test_cover_length_exactly(self):
        rng = rng_for(0, "seg")
        for length in (1, 7, 50, 333):
            segs = ss_segments(length, rng)
            assert sum(n for _, n in segs) == length

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ss_segments(0, rng_for(0, "seg"))

    def test_alternates_regular_and_coil(self):
        segs = ss_segments(200, rng_for(1, "seg"))
        kinds = [k for k, _ in segs]
        for a, b in zip(kinds, kinds[1:]):
            if a in "HE":
                assert b == "C"

    def test_helix_bias(self):
        rng_h = rng_for(2, "seg")
        rng_e = rng_for(2, "seg")
        helices = sum(
            n for k, n in ss_segments(5000, rng_h, helix_bias=0.95) if k == "H"
        )
        strands = sum(
            n for k, n in ss_segments(5000, rng_e, helix_bias=0.05) if k == "E"
        )
        assert helices > 2000 and strands > 1200


class TestChainBuilding:
    def test_bond_lengths_exact(self):
        rng = rng_for(3, "chain")
        segs = ss_segments(150, rng)
        angles, torsions, labels = torsions_for_segments(segs, rng)
        chain = build_ca_chain(angles, torsions)
        bonds = np.linalg.norm(np.diff(chain, axis=0), axis=1)
        np.testing.assert_allclose(bonds, CA_BOND, atol=1e-9)
        assert labels.size == 150

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_ca_chain(np.zeros(5), np.zeros(4))

    def test_angles_clipped_protect_i_plus_2(self):
        rng = rng_for(4, "chain")
        segs = ss_segments(400, rng)
        angles, torsions, _ = torsions_for_segments(segs, rng)
        chain = build_ca_chain(angles, torsions)
        d2 = np.linalg.norm(chain[2:] - chain[:-2], axis=1)
        assert d2.min() > 3.6  # above the bump cutoff by construction


class TestCompaction:
    @pytest.mark.parametrize("length", [80, 250, 700])
    def test_compact_globule(self, length):
        rng = rng_for(5, "compact", length)
        segs = ss_segments(length, rng)
        angles, torsions, _ = torsions_for_segments(segs, rng)
        chain = build_ca_chain(angles, torsions)
        folded = compact_chain(chain, rng)
        rg = np.sqrt(((folded - folded.mean(0)) ** 2).sum(1).mean())
        # Within ~2.2x of the empirical globular target (coarse model).
        assert rg < 2.2 * target_radius_of_gyration(length) + 4.0
        bonds = np.linalg.norm(np.diff(folded, axis=0), axis=1)
        assert abs(bonds.mean() - CA_BOND) < 0.15
        assert bonds.std() < 0.3

    def test_no_violations_after_compaction(self):
        rng = rng_for(6, "compact")
        segs = ss_segments(300, rng)
        angles, torsions, _ = torsions_for_segments(segs, rng)
        folded = compact_chain(build_ca_chain(angles, torsions), rng)
        d = pairwise_distances(folded)
        iu = np.triu_indices(300, k=3)
        assert d[iu].min() > 3.6

    def test_short_chain_passthrough(self):
        rng = rng_for(7, "compact")
        tiny = np.zeros((3, 3))
        out = compact_chain(tiny, rng)
        np.testing.assert_array_equal(out, tiny)


class TestResolveOverlaps:
    def test_separates_overlapping_pair(self):
        coords = np.zeros((10, 3))
        coords[:, 0] = np.arange(10) * 3.8
        coords[7] = coords[0] + np.array([0.5, 0.5, 0.0])
        fixed = resolve_overlaps(coords)
        assert np.linalg.norm(fixed[7] - fixed[0]) >= 3.6

    def test_clean_input_unchanged(self):
        coords = np.zeros((10, 3))
        coords[:, 0] = np.arange(10) * 3.8
        fixed = resolve_overlaps(coords)
        np.testing.assert_allclose(fixed, coords)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_always_resolves_random_clusters(self, seed):
        rng = np.random.default_rng(seed)
        coords = rng.normal(scale=6.0, size=(40, 3))
        fixed = resolve_overlaps(coords)
        d = pairwise_distances(fixed)
        iu = np.triu_indices(40, k=3)
        assert d[iu].min() >= 3.6


def test_target_rg_scaling():
    assert target_radius_of_gyration(100) == pytest.approx(2.2 * 100**0.38)
    assert target_radius_of_gyration(800) > target_radius_of_gyration(100)
