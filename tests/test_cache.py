"""Feature-cache semantics: content addressing, invalidation, disk."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.cache import CacheStats, FeatureCache
from repro.msa import build_suite, generate_features
from repro.msa.databases import LibraryEntry, LibrarySuite, SequenceLibrary
from repro.msa.features import FeatureGenConfig
from repro.telemetry.metrics import MetricsRegistry, use_metrics

CONFIG = FeatureGenConfig()


@pytest.fixture()
def record(proteome):
    return list(proteome)[0]


def _tiny_suite(tag: int) -> LibrarySuite:
    """A minimal suite whose content (and fingerprint) depends on ``tag``."""

    def lib(name: str) -> SequenceLibrary:
        entry = LibraryEntry(
            entry_id=f"{name}_{tag}",
            encoded=np.full(24, tag % 20, dtype=np.int64),
            family_id=None,
            divergence=0.1,
            annotated=False,
            cluster_id=f"{name}_{tag}",
        )
        return SequenceLibrary(name=name, entries=[entry], modeled_bytes=tag)

    return LibrarySuite(
        uniref=lib("u"), bfd=lib("b"), mgnify=lib("m"), pdb_seqs=lib("p")
    )


class TestKeying:
    def test_key_is_deterministic(self, record, suite):
        cache = FeatureCache()
        assert cache.key_for(record, suite, CONFIG) == cache.key_for(
            record, suite, CONFIG
        )

    def test_key_depends_on_sequence(self, proteome, suite):
        records = list(proteome)[:2]
        cache = FeatureCache()
        assert cache.key_for(records[0], suite, CONFIG) != cache.key_for(
            records[1], suite, CONFIG
        )

    def test_key_invalidates_on_config_change(self, record, suite):
        cache = FeatureCache()
        changed = FeatureGenConfig(min_containment=0.5)
        assert cache.key_for(record, suite, CONFIG) != cache.key_for(
            record, suite, changed
        )

    def test_key_invalidates_on_suite_change(self, record, suite, universe):
        cache = FeatureCache()
        other = build_suite(universe, ["D_vulgaris"], seed=8, scale=0.02)
        assert cache.key_for(record, suite, CONFIG) != cache.key_for(
            record, other, CONFIG
        )

    def test_key_correct_after_id_reuse(self, record):
        """Regression: fingerprints must not be memoised by ``id(suite)``.

        CPython reuses object ids after garbage collection, so an
        id-keyed side table can hand a *new* suite the fingerprint of a
        dead one — silently wrong cache keys.  Memoising on the suite
        instance itself is immune; this test forces an id collision and
        checks the key tracks content, not identity.
        """
        cache = FeatureCache()
        # Pre-build the candidate suites' parts so the loop below does no
        # allocation between ``del`` and the next ``LibrarySuite()`` —
        # that is what makes CPython hand the dead suite's id right back.
        parts = [
            {
                "uniref": s.uniref,
                "bfd": s.bfd,
                "mgnify": s.mgnify,
                "pdb_seqs": s.pdb_seqs,
            }
            for s in (_tiny_suite(tag) for tag in range(1, 200))
        ]
        suite = _tiny_suite(0)
        stale_id = id(suite)
        stale_fp = suite.fingerprint()
        stale_key = cache.key_for(record, suite, CONFIG)
        del suite
        for kwargs in parts:
            candidate = LibrarySuite(**kwargs)
            if id(candidate) == stale_id:
                assert candidate.fingerprint() != stale_fp
                assert cache.key_for(record, candidate, CONFIG) != stale_key
                return
            del candidate
        pytest.skip("interpreter never reused the object id")

    def test_identical_suites_share_keys(self, record, universe):
        # Content addressing: two separately built but identical suites
        # hash the same, so a cache survives a suite rebuild.
        s1 = build_suite(universe, ["D_vulgaris"], seed=9, scale=0.02)
        s2 = build_suite(universe, ["D_vulgaris"], seed=9, scale=0.02)
        assert s1.fingerprint() == s2.fingerprint()
        cache = FeatureCache()
        assert cache.key_for(record, s1, CONFIG) == cache.key_for(
            record, s2, CONFIG
        )


class TestHitMiss:
    def test_miss_then_hit(self, record, suite):
        cache = FeatureCache()
        first = generate_features(record, suite, cache=cache)
        second = generate_features(record, suite, cache=cache)
        assert cache.stats == CacheStats(hits=1, misses=1)
        assert len(cache) == 1
        assert second.msa_depth == first.msa_depth
        assert second.effective_depth == first.effective_depth
        assert second.n_templates == first.n_templates

    def test_hit_substitutes_record(self, proteome, suite):
        # Two records, same features cached under the sequence hash: the
        # returned bundle must carry the *queried* record.
        record = list(proteome)[0]
        cache = FeatureCache()
        bundle = generate_features(record, suite, cache=cache)
        key = cache.key_for(record, suite, CONFIG)
        hit = cache.get(key, record=record)
        assert hit is not None
        assert hit.record is record
        assert hit.msa_depth == bundle.msa_depth

    def test_get_unknown_key_counts_miss(self):
        cache = FeatureCache()
        assert cache.get("no-such-key") is None
        assert cache.stats == CacheStats(hits=0, misses=1)

    def test_stats_since(self):
        a = CacheStats(hits=3, misses=5)
        b = CacheStats(hits=10, misses=6)
        delta = b.since(a)
        assert delta == CacheStats(hits=7, misses=1)
        assert delta.lookups == 8
        assert delta.hit_rate == pytest.approx(7 / 8)
        assert CacheStats().hit_rate == 0.0


class TestDisk:
    def test_disk_roundtrip_across_instances(self, record, suite, tmp_path):
        first = FeatureCache(directory=tmp_path)
        bundle = generate_features(record, suite, cache=first)
        # A fresh cache instance (new process in real life) hits disk.
        second = FeatureCache(directory=tmp_path)
        reloaded = generate_features(record, suite, cache=second)
        assert second.stats == CacheStats(hits=1, misses=0)
        assert reloaded.msa_depth == bundle.msa_depth
        assert reloaded.record_id == bundle.record_id

    def test_clear_memory_keeps_disk(self, record, suite, tmp_path):
        cache = FeatureCache(directory=tmp_path)
        generate_features(record, suite, cache=cache)
        cache.clear_memory()
        assert len(cache) == 0
        generate_features(record, suite, cache=cache)
        assert cache.stats.hits == 1

    def test_corrupt_entry_is_a_miss(self, record, suite, tmp_path):
        cache = FeatureCache(directory=tmp_path)
        generate_features(record, suite, cache=cache)
        key = cache.key_for(record, suite, CONFIG)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        cache.clear_memory()
        fresh = FeatureCache(directory=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats == CacheStats(hits=0, misses=1)

    def test_corrupt_entry_quarantined(self, record, suite, tmp_path):
        """A bad disk entry is unlinked and counted, not retried forever."""
        cache = FeatureCache(directory=tmp_path)
        generate_features(record, suite, cache=cache)
        key = cache.key_for(record, suite, CONFIG)
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(b"\x80garbage not a pickle")
        fresh = FeatureCache(directory=tmp_path)
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert fresh.get(key) is None
        assert not path.exists()  # slot self-repairs on the next put
        assert registry.counter_values()["feature.cache.corrupt"] == 1

    def test_concurrent_puts_never_tear(self, suite, tmp_path):
        """Racing writers of one key must always publish whole pickles.

        Regression: a shared ``<key>.pkl.tmp`` scratch path let two
        concurrent puts interleave write and rename and publish a torn
        file.  With per-writer temp names, readers hitting disk
        mid-storm either miss or load a complete bundle — never a
        corrupt one.
        """
        writer_cache = FeatureCache(directory=tmp_path)
        reader_cache = FeatureCache(directory=tmp_path)
        payload = {"arr": np.arange(4096.0)}
        key = "feedface" * 8
        stop = threading.Event()
        torn: list[str] = []

        def writer() -> None:
            while not stop.is_set():
                writer_cache.put(key, payload)

        def reader() -> None:
            while not stop.is_set():
                reader_cache.clear_memory()  # force the disk path
                out = reader_cache.get(key)
                if out is not None and not np.array_equal(
                    out["arr"], payload["arr"]
                ):
                    torn.append("torn bundle observed")

        registry = MetricsRegistry()
        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        with use_metrics(registry):
            for t in threads:
                t.start()
            timer = threading.Timer(0.5, stop.set)
            timer.start()
            for t in threads:
                t.join()
            timer.cancel()
        assert torn == []
        assert registry.counter_values().get("feature.cache.corrupt", 0) == 0
        assert list(tmp_path.glob("*.tmp")) == []

    def test_put_writes_loadable_pickle(self, record, suite, tmp_path):
        cache = FeatureCache(directory=tmp_path)
        bundle = generate_features(record, suite, cache=cache)
        key = cache.key_for(record, suite, CONFIG)
        on_disk = pickle.loads((tmp_path / f"{key}.pkl").read_bytes())
        assert on_disk.msa_depth == bundle.msa_depth
