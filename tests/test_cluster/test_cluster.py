"""Cluster substrate tests: machines, LSF layouts, clock, cost model."""

import pytest

from repro.cluster import (
    ANDES,
    SUMMIT,
    BatchJob,
    BatchScheduler,
    JsrunStatement,
    ResourceSet,
    SimClock,
    feature_task_seconds,
    inference_job,
    inference_recycle_seconds,
    inference_task_seconds,
    relax_pass_seconds,
    relax_task_seconds,
)


class TestMachines:
    def test_summit_shape(self):
        assert SUMMIT.gpus_per_node == 6
        assert SUMMIT.total_gpus == 4600 * 6
        assert SUMMIT.workers_per_node() == 6
        assert SUMMIT.n_highmem_nodes > 0

    def test_andes_no_gpus(self):
        assert not ANDES.has_gpus
        assert ANDES.workers_per_node() >= 1

    def test_node_hours(self):
        assert SUMMIT.node_hours(32, 3600) == 32.0
        with pytest.raises(ValueError):
            SUMMIT.node_hours(10_000, 60)
        with pytest.raises(ValueError):
            SUMMIT.node_hours(-1, 60)

    def test_worker_memory_split(self):
        per_worker = SUMMIT.worker_memory_bytes()
        assert 0 <= SUMMIT.node_memory_bytes - per_worker * 6 < 6
        assert SUMMIT.worker_memory_bytes(highmem=True) > per_worker


class TestLSF:
    def test_paper_inference_layout_fits(self):
        job = inference_job(32, SUMMIT)
        assert len(job.statements) == 3  # scheduler, workers, client
        workers = job.statements[1]
        assert workers.n_sets == 32 * 6
        assert workers.resource_set.gpus == 1

    def test_oversubscription_rejected(self):
        job = BatchJob("too-big", n_nodes=1)
        job.add(JsrunStatement("w", 100, ResourceSet(cores=4, gpus=1)))
        with pytest.raises(ValueError):
            job.validate(SUMMIT)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError):
            BatchJob("huge", n_nodes=99_999).validate(SUMMIT)

    def test_resource_set_validation(self):
        with pytest.raises(ValueError):
            ResourceSet(cores=0)
        with pytest.raises(ValueError):
            JsrunStatement("x", 0, ResourceSet(cores=1))

    def test_scheduler_accounting(self):
        sched = BatchScheduler(SUMMIT)
        job = inference_job(10, SUMMIT)
        rec = sched.run_job(job, wall_seconds=7200)
        assert rec.node_hours == 20.0
        assert sched.total_node_hours == 20.0


class TestSimClock:
    def test_ordering(self):
        clock = SimClock()
        seen = []
        clock.schedule(5.0, lambda: seen.append("b"))
        clock.schedule(1.0, lambda: seen.append("a"))
        clock.schedule(5.0, lambda: seen.append("c"))  # ties keep order
        end = clock.run()
        assert seen == ["a", "b", "c"]
        assert end == 5.0

    def test_nested_scheduling(self):
        clock = SimClock()
        seen = []

        def first():
            seen.append(clock.now)
            clock.schedule(2.0, lambda: seen.append(clock.now))

        clock.schedule(1.0, first)
        clock.run()
        assert seen == [1.0, 3.0]

    def test_run_until(self):
        clock = SimClock()
        clock.schedule(10.0, lambda: None)
        assert clock.run(until=5.0) == 5.0
        assert len(clock) == 1

    def test_past_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.schedule(-1.0, lambda: None)


class TestCostModel:
    def test_inference_monotone(self):
        assert inference_recycle_seconds(500) > inference_recycle_seconds(100)
        assert inference_task_seconds(200, 6) > inference_task_seconds(200, 3)
        assert inference_task_seconds(200, 3, 8) > 8 * inference_recycle_seconds(200)

    def test_table1_reduced_db_calibration(self):
        # 2795 tasks at mean length ~202, 3 recycles, on 192 workers
        # should land in the neighbourhood of the paper's 44 minutes.
        per_task = inference_task_seconds(202, 3)
        walltime_min = 2795 * per_task / 192 / 60
        assert 35 <= walltime_min <= 55

    def test_feature_reduced_cheaper_than_full(self):
        full = feature_task_seconds(328, dataset_fraction=1.0)
        reduced = feature_task_seconds(328, dataset_fraction=0.2)
        assert reduced < full

    def test_feature_contention_slows(self):
        assert feature_task_seconds(328, io_contention=3.0) > feature_task_seconds(328)

    def test_dvulgaris_feature_node_hours(self):
        # 3205 searches, 4 per node, reduced dataset: ~240 node-hours.
        per_task = feature_task_seconds(328, dataset_fraction=0.2)
        node_hours = 3205 * per_task / 4 / 3600
        assert 180 <= node_hours <= 310

    def test_relax_gpu_beats_cpu(self):
        for atoms in (1000, 3000, 10_000):
            assert relax_pass_seconds(atoms, "gpu") < relax_pass_seconds(atoms, "cpu")

    def test_relax_speedup_grows_with_size(self):
        small = relax_task_seconds(1500, 2, "cpu") / relax_task_seconds(1500, 1, "gpu")
        large = relax_task_seconds(12_000, 2, "cpu") / relax_task_seconds(
            12_000, 1, "gpu"
        )
        assert large > small
        assert 8 <= large <= 30  # paper: up to ~14x

    def test_genome_relax_calibration(self):
        # 3205 structures on 48 GPU workers: paper 22.89 minutes.
        mean_atoms = 328 * 8
        minutes = 3205 * relax_task_seconds(mean_atoms, 1, "gpu") / 48 / 60
        assert 15 <= minutes <= 32

    def test_validation(self):
        with pytest.raises(ValueError):
            inference_task_seconds(0, 3)
        with pytest.raises(ValueError):
            inference_task_seconds(100, 0)
        with pytest.raises(ValueError):
            relax_pass_seconds(100, "tpu")
        with pytest.raises(ValueError):
            feature_task_seconds(100, io_contention=0.5)
