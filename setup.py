"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) are unavailable; this
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``develop`` path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
